//! Spawn, run, and collect a real-thread simulation.
//!
//! Robustness contract: [`run_threads`] returns `Err` — never hangs, never
//! aborts the process — when a worker panics or the liveness watchdog
//! detects that GVT has stopped advancing. Both paths poison every blocking
//! primitive so sibling threads drain and join promptly, and the stall path
//! carries a structured [`StallDump`] of per-thread state for post-mortems.

use crate::affinity::num_cores;
use crate::ckpt::CkptSink;
use crate::shared::RtShared;
use crate::worker::{controller_loop, worker_loop, WorkerResult};
use metrics::RunMetrics;
use pdes_core::{
    Checkpoint, EngineConfig, FaultInjector, FaultPlan, IngestError, IngestGate, LpId, LpMap,
    Model, Msg, SimThreadId, StallDump, ThreadEngine, VirtualTime,
};
use sim_rt::{Scheduler, SystemConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::{Telemetry, TelemetryConfig, TelemetryData};

/// Configuration for a real-thread run.
#[derive(Debug, Clone)]
pub struct RtRunConfig {
    pub num_threads: usize,
    pub engine: EngineConfig,
    pub system: SystemConfig,
    /// Cores used for the affinity policies (defaults to the host's count).
    pub pin_cores: usize,
    /// Fault-injection plan (empty ⇒ zero-cost pass-through).
    pub faults: FaultPlan,
    /// Wall-clock bound on GVT progress before the liveness watchdog trips
    /// (`None` disables the watchdog entirely).
    pub watchdog: Option<Duration>,
    /// Take a GVT-aligned checkpoint every this many GVT rounds
    /// (0 disables checkpointing).
    pub checkpoint_every_gvt: u64,
    /// Also persist each checkpoint here (atomic rename-into-place);
    /// `None` keeps checkpoints in memory only.
    pub checkpoint_path: Option<PathBuf>,
    /// Live telemetry (off by default; near-zero cost when disabled).
    pub telemetry: TelemetryConfig,
}

impl RtRunConfig {
    pub fn new(num_threads: usize, engine: EngineConfig, system: SystemConfig) -> Self {
        RtRunConfig {
            num_threads,
            engine,
            system,
            pin_cores: num_cores(),
            faults: FaultPlan::default(),
            watchdog: Some(Duration::from_secs(30)),
            checkpoint_every_gvt: 0,
            checkpoint_path: None,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Attach a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override (or disable, with `None`) the liveness watchdog bound.
    pub fn with_watchdog(mut self, bound: Option<Duration>) -> Self {
        self.watchdog = bound;
        self
    }

    /// Take a GVT-aligned checkpoint every `every` GVT rounds (0 disables).
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every_gvt = every;
        self
    }

    /// Persist checkpoints to `path` (atomic rename-into-place).
    pub fn with_checkpoint_path(mut self, path: PathBuf) -> Self {
        self.checkpoint_path = Some(path);
        self
    }

    /// Enable live telemetry (per-thread tracing + GVT-round snapshots).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Result of a real-thread run.
#[derive(Debug, Clone)]
pub struct RtResult {
    pub metrics: RunMetrics,
    /// Final state digest of every LP, ordered by LP id.
    pub digests: Vec<u64>,
    pub gvt_regressions: u64,
    /// Fault injections actually performed (all zero without a plan).
    pub fault_counts: pdes_core::FaultCounts,
    /// Collected trace + round snapshots (`None` when telemetry was off).
    pub telemetry: Option<TelemetryData>,
}

/// Why a real-thread run failed to complete.
#[derive(Debug)]
pub enum RunError {
    /// The liveness watchdog saw no GVT progress within its bound; the run
    /// was torn down and this dump captured where every thread was stuck.
    Stalled(Box<StallDump>),
    /// A worker thread panicked; siblings were woken and drained.
    WorkerPanicked { thread: usize, message: String },
    /// The ingest journal failed mid-run: an admission could not be made
    /// durable, so the run is reported failed rather than silently accepting
    /// events a crash would lose.
    Ingest(IngestError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Stalled(dump) => write!(f, "{dump}"),
            RunError::WorkerPanicked { thread, message } => {
                write!(f, "worker thread {thread} panicked: {message}")
            }
            RunError::Ingest(e) => write!(f, "ingest plane failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Render a panic payload (the two shapes `panic!` actually produces).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One attempt of a (possibly supervised) real-thread run: the outcome plus
/// everything the supervisor needs to recover from a failure — the newest
/// checkpoint this attempt assembled and the per-thread committed-event
/// loads, which survive even when the attempt itself errored (joined worker
/// state is *not* discarded on failure; the load vector drives the LP remap
/// onto survivors).
pub struct RtAttempt<M: Model> {
    pub outcome: Result<RtResult, RunError>,
    pub checkpoint: Option<Checkpoint<M::State, M::Payload>>,
    pub thread_loads: Vec<u64>,
}

/// Run `model` on real threads. Blocks until the simulation completes,
/// panics, or trips the liveness watchdog — it never hangs indefinitely
/// while the watchdog is armed.
pub fn run_threads<M: Model>(model: &Arc<M>, rc: &RtRunConfig) -> Result<RtResult, RunError> {
    run_threads_resumable(model, rc, None, None).outcome
}

/// [`run_threads`] with a live external-event ingest gate. Client threads
/// submit to `gate` concurrently with the run; each GVT round's
/// pseudo-controller admits queued submissions right after publishing the
/// round's GVT. On successful completion the gate is closed (queued
/// submissions get [`pdes_core::IngestReply::Closed`]); on failure it stays
/// open so a supervisor can resume with it.
pub fn run_threads_ingest<M: Model>(
    model: &Arc<M>,
    rc: &RtRunConfig,
    gate: Arc<IngestGate<M::Payload>>,
) -> Result<RtResult, RunError> {
    run_threads_attempt(model, rc, None, None, Some(gate)).outcome
}

/// Run one attempt, optionally resuming from a GVT-aligned checkpoint and
/// with a pre-seeded fault injector (the supervisor restores fault-stream
/// cursors and consumes the kill that felled the previous attempt before
/// handing the injector in).
///
/// When `resume` is given, its map — not the formula map — assigns LPs to
/// threads, `rc.num_threads` must match the map, and the weak-scaling
/// divisibility requirement is waived (recovered maps are deliberately
/// uneven).
pub fn run_threads_resumable<M: Model>(
    model: &Arc<M>,
    rc: &RtRunConfig,
    resume: Option<&Checkpoint<M::State, M::Payload>>,
    faults: Option<FaultInjector>,
) -> RtAttempt<M> {
    run_threads_attempt(model, rc, resume, faults, None)
}

/// One attempt with every hook exposed: checkpoint resume, a pre-seeded
/// fault injector, and an optional ingest gate. When both `resume` and
/// `gate` are given, the gate's accepted-but-uncut events (`send_time ≥`
/// the cut GVT) are re-injected before the workers start — the exactly-once
/// replay half of the ingest durability contract.
pub fn run_threads_attempt<M: Model>(
    model: &Arc<M>,
    rc: &RtRunConfig,
    resume: Option<&Checkpoint<M::State, M::Payload>>,
    faults: Option<FaultInjector>,
    gate: Option<Arc<IngestGate<M::Payload>>>,
) -> RtAttempt<M> {
    let n = rc.num_threads;
    let map = match resume {
        Some(c) => {
            assert_eq!(
                c.map.num_threads as usize, n,
                "checkpoint map threads must match the run config"
            );
            c.map.clone()
        }
        None => {
            assert!(
                model.num_lps().is_multiple_of(n),
                "weak scaling requires LPs divisible by thread count"
            );
            LpMap::new(model.num_lps(), n, rc.engine.mapping)
        }
    };
    let mut shared_init: RtShared<M::Payload> = RtShared::new(n, rc.pin_cores, rc.engine.end_time);
    shared_init.set_faults(faults.unwrap_or_else(|| FaultInjector::new(rc.faults.clone())));
    shared_init.set_checkpoint_every(rc.checkpoint_every_gvt);
    // Each attempt gets a fresh registry: a supervised restart must not
    // inherit the felled attempt's half-deposited rings.
    shared_init.set_telemetry(Telemetry::new(rc.telemetry.clone()));
    if let Some(c) = resume {
        shared_init.seed_gvt(c.gvt, c.gvt_rounds);
    }
    if let Some(g) = &gate {
        shared_init.set_ingest(Arc::clone(g), map.clone());
    }
    let shared = Arc::new(shared_init);
    let sink: Arc<CkptSink<M>> = Arc::new(CkptSink::new(
        if rc.checkpoint_every_gvt > 0 {
            rc.checkpoint_path.clone()
        } else {
            None
        },
        map.clone(),
    ));

    // Build engines; a fresh run pre-routes the initial events, a resumed
    // run instead restores each engine's share of the cut (initial events
    // are already part of the checkpoint's history).
    let mut engines = Vec::with_capacity(n);
    for t in 0..n {
        let mut eng = ThreadEngine::new(
            Arc::clone(model),
            map.clone(),
            SimThreadId(t as u32),
            &rc.engine,
        );
        match resume {
            Some(c) => {
                eng.take_init_events();
                eng.restore(&c.lps, &c.events, c.gvt);
            }
            None => {
                for (dst, msg) in eng.take_init_events() {
                    shared.push_msg(t, dst.index(), msg);
                }
            }
        }
        engines.push(eng);
    }
    if let Some(g) = &gate {
        // Replay the accepted-but-uncut ingest suffix: a cut at `c.gvt`
        // holds every accepted event with `send_time < c.gvt`; the
        // complement is re-pushed here, before any worker starts, so each
        // accepted idempotency id commits exactly once across the restore.
        // A restart from genesis (a prior attempt died before the first
        // checkpoint deposit) has an empty cut, so everything ever accepted
        // is re-pushed — the gate dedups client retries as `Duplicate`, so
        // nothing else will carry those ids back in.
        let cut = resume.map(|c| c.gvt).unwrap_or(VirtualTime::ZERO);
        g.reinject_after_restore(cut, &mut |ev| {
            let dst = map.thread_of(ev.key.dst).index();
            shared.push_msg(0, dst, Msg::Event(ev));
        });
    }

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (t, eng) in engines.into_iter().enumerate() {
        let sh = Arc::clone(&shared);
        let sys = rc.system;
        let ecfg = rc.engine.clone();
        let pin_cores = rc.pin_cores;
        let ck = Arc::clone(&sink);
        handles.push(
            std::thread::Builder::new()
                .name(format!("sim{t}"))
                .spawn(move || {
                    // A panicking worker must not strand its siblings in
                    // semaphores or barriers: poison everything, then report.
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker_loop(t, eng, Arc::clone(&sh), sys, ecfg, pin_cores, ck)
                    }));
                    match caught {
                        Ok(r) => Ok(r),
                        Err(payload) => {
                            sh.poison_all();
                            Err(panic_message(payload.as_ref()))
                        }
                    }
                })
                .expect("spawn worker"),
        );
    }
    let controller = if matches!(rc.system.scheduler, Scheduler::DdPdes) {
        let sh = Arc::clone(&shared);
        Some(
            std::thread::Builder::new()
                .name("controller".into())
                .spawn(move || controller_loop(sh))
                .expect("spawn controller"),
        )
    } else {
        None
    };

    // Liveness watchdog: sample (gvt, gvt_rounds) and trip when neither has
    // changed within the bound — the run is wedged, so capture a structured
    // dump and poison every primitive instead of hanging in `join` below.
    let monitor_exit = Arc::new(AtomicBool::new(false));
    let monitor = rc.watchdog.map(|bound| {
        let sh = Arc::clone(&shared);
        let exit = Arc::clone(&monitor_exit);
        let system = rc.system.name();
        let tick = (bound / 8).clamp(Duration::from_millis(5), Duration::from_millis(500));
        std::thread::Builder::new()
            .name("watchdog".into())
            .spawn(move || -> Option<Box<StallDump>> {
                let mut last = (0u64, 0u64);
                let mut last_change = Instant::now();
                loop {
                    std::thread::park_timeout(tick);
                    if exit.load(Ordering::Acquire) || sh.terminated.load(Ordering::Acquire) {
                        return None;
                    }
                    let now = (sh.gvt().ticks(), sh.gvt_rounds.load(Ordering::Acquire));
                    if now != last {
                        last = now;
                        last_change = Instant::now();
                        continue;
                    }
                    if last_change.elapsed() < bound {
                        continue;
                    }
                    let reason = format!(
                        "no GVT progress for {:.1}s (bound {:.1}s)",
                        last_change.elapsed().as_secs_f64(),
                        bound.as_secs_f64()
                    );
                    let dump = Box::new(sh.build_stall_dump(&reason, &system));
                    sh.watchdog_tripped.store(true, Ordering::Release);
                    sh.poison_all();
                    return Some(dump);
                }
            })
            .expect("spawn watchdog")
    });

    let mut results: Vec<Option<WorkerResult>> = (0..n).map(|_| None).collect();
    let mut first_panic: Option<(usize, String)> = None;
    for (t, h) in handles.into_iter().enumerate() {
        match h.join().expect("worker join") {
            Ok(r) => results[t] = Some(r),
            Err(message) => {
                if first_panic.is_none() {
                    first_panic = Some((t, message));
                }
            }
        }
    }
    shared.controller_exit.store(true, Ordering::Release);
    if let Some(c) = controller {
        c.join().expect("controller panicked");
    }
    monitor_exit.store(true, Ordering::Release);
    let stall = monitor.and_then(|m| {
        m.thread().unpark();
        m.join().expect("watchdog panicked")
    });
    let wall = start.elapsed();

    // Survivor state outlives a failed attempt: the per-thread committed
    // loads feed the supervisor's LP remap, and the newest assembled
    // checkpoint is what it restores from.
    let thread_loads: Vec<u64> = results
        .iter()
        .map(|r| r.as_ref().map_or(0, |w| w.stats.committed))
        .collect();
    let checkpoint = sink.latest();

    // Panic beats stall: a panicked worker stops folding minima, so a
    // watchdog trip during teardown is a symptom, not the cause.
    if let Some((thread, message)) = first_panic {
        return RtAttempt {
            outcome: Err(RunError::WorkerPanicked { thread, message }),
            checkpoint,
            thread_loads,
        };
    }
    if let Some(dump) = stall {
        return RtAttempt {
            outcome: Err(RunError::Stalled(dump)),
            checkpoint,
            thread_loads,
        };
    }
    if let Some(e) = shared.take_ingest_error() {
        return RtAttempt {
            outcome: Err(RunError::Ingest(e)),
            checkpoint,
            thread_loads,
        };
    }
    if let Some(g) = &gate {
        // The simulation completed: refuse further submissions (queued ones
        // get `Closed`). Failure paths above leave the gate open so a
        // supervisor can resume with it.
        g.close();
    }

    let mut total = pdes_core::ThreadStats::default();
    let mut digests: Vec<(LpId, u64)> = Vec::new();
    for r in results.iter().flatten() {
        total.merge(&r.stats);
        digests.extend(r.digests.iter().copied());
    }
    digests.sort_by_key(|&(lp, _)| lp);

    let telemetry_data = shared.telemetry.enabled().then(|| shared.telemetry.take());
    let metrics = RunMetrics {
        system: rc.system.name(),
        threads: n,
        lps: model.num_lps(),
        wall_secs: wall.as_secs_f64(),
        committed: total.committed,
        processed: total.processed,
        rolled_back: total.rolled_back,
        rollbacks: total.rollbacks,
        antis_sent: total.antis_sent,
        gvt_rounds: shared.gvt_rounds.load(Ordering::Acquire),
        gvt_cpu_secs: shared.gvt_wall_ns.load(Ordering::Acquire) as f64 * 1e-9,
        max_descheduled: shared.max_descheduled.load(Ordering::Acquire),
        commit_digest: total.commit_digest,
        pin_failures: shared.aff.lock().pin_failures,
        last_round: telemetry_data
            .as_ref()
            .and_then(|d| d.last_round().cloned()),
        protocol: "optimistic".into(),
        ..Default::default()
    };
    RtAttempt {
        outcome: Ok(RtResult {
            metrics,
            digests: digests.into_iter().map(|(_, d)| d).collect(),
            gvt_regressions: shared.gvt_regressions.load(Ordering::Acquire),
            fault_counts: shared.faults.counts(),
            telemetry: telemetry_data,
        }),
        checkpoint,
        thread_loads,
    }
}
