//! Batched inter-thread sends — the outgoing half of the zero-allocation
//! hot path.
//!
//! Without batching every cross-thread message costs one mutex acquisition
//! and two atomic RMWs on the destination queue — paid *per event* on the
//! phold hot path. The [`SendBatcher`] accumulates a cycle's outgoing
//! messages per destination and lands each group with a single bulk push
//! ([`RtShared::push_batch`]), collapsing the per-event synchronisation
//! cost to per-flush.
//!
//! # GVT coverage
//!
//! A buffered message is invisible to the destination's `queue_min`, so it
//! must stay covered by the *sender's* send window: [`SendBatcher::buffer`]
//! publishes `window_min[me]` exactly like `push_msg` does before its
//! enqueue. The window is only reset by the owning thread's own `fold_min`,
//! which gives the one hard safety rule: **flush before every fold** (the
//! worker's `drain_deliver` runs on every fold path and flushes first).
//! Between buffer and flush the message is covered by `window_min[me]`;
//! after the flush by `queue_min[dst]` — coverage never lapses, which is
//! the same invariant the per-message path maintains.
//!
//! # Flush policy
//!
//! - **batch-full** — a destination buffer reaching [`SendBatcher::cap`]
//!   flushes that destination immediately (bounds buffering under heavy
//!   fan-out within one cycle);
//! - **LVT advance / idle** — the worker flushes at the end of every main
//!   loop cycle that processed events *and* whenever it goes idle (a
//!   starved peer must see our messages before we spin waiting on it);
//! - **GVT round boundaries** — `drain_deliver` flushes before each phase
//!   fold; checkpoint cuts, parking and termination all pass through it.
//!
//! Messages crossing a remote shard boundary bypass the batcher entirely:
//! their latency budget is governed by the distributed GVT tracker and the
//! wire already batches frames at the link layer.

use crate::shared::RtShared;
use pdes_core::Msg;

/// Per-thread accumulator of outgoing messages, grouped by destination
/// thread. One instance lives on each worker's stack; it is not shared.
pub struct SendBatcher<P> {
    /// One buffer per *global* destination thread id.
    bufs: Vec<Vec<Msg<P>>>,
    /// Destinations with (possibly) non-empty buffers. May contain
    /// duplicates after a batch-full flush; `flush` tolerates empties.
    dirty: Vec<usize>,
    /// Per-destination flush threshold.
    cap: usize,
}

impl<P> SendBatcher<P> {
    /// `num_dsts` is the number of *global* thread ids messages can target
    /// (shard window base + size for distributed runs).
    pub fn new(num_dsts: usize, cap: usize) -> Self {
        SendBatcher {
            bufs: (0..num_dsts).map(|_| Vec::new()).collect(),
            dirty: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Buffer one outgoing message, publishing the sender's send window
    /// first so GVT accounting covers it from this instant on. Remote
    /// (out-of-window) destinations are forwarded immediately.
    pub fn buffer(&mut self, sh: &RtShared<P>, me: usize, dst: usize, msg: Msg<P>) {
        if !sh.dst_is_local(dst) {
            sh.push_msg(me, dst, msg);
            return;
        }
        sh.publish_window(me, msg.recv_time());
        let buf = &mut self.bufs[dst];
        if buf.is_empty() {
            self.dirty.push(dst);
        }
        buf.push(msg);
        if buf.len() >= self.cap {
            sh.push_batch(dst, buf);
        }
    }

    /// Land every buffered message in its destination queue. Order within
    /// each (sender, destination) pair is preserved; cross-destination
    /// order is not (the pending set tolerates any inter-uid interleaving).
    pub fn flush(&mut self, sh: &RtShared<P>) {
        for dst in self.dirty.drain(..) {
            sh.push_batch(dst, &mut self.bufs[dst]);
        }
    }

    /// `true` when no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty() || self.bufs.iter().all(|b| b.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::{Event, EventKey, EventUid, LpId, VirtualTime};

    fn msg(t: f64, dst_lp: u32, seq: u64) -> Msg<u8> {
        Msg::Event(Event {
            key: EventKey {
                recv_time: VirtualTime::from_f64(t),
                dst: LpId(dst_lp),
                uid: EventUid::new(LpId(0), seq),
            },
            send_time: VirtualTime::ZERO,
            payload: 0,
        })
    }

    fn shared(n: usize) -> RtShared<u8> {
        RtShared::new(n, 1, VirtualTime::from_f64(1e9))
    }

    #[test]
    fn buffered_messages_stay_gvt_covered_until_flush() {
        let sh = shared(2);
        let mut b: SendBatcher<u8> = SendBatcher::new(2, 64);
        b.buffer(&sh, 0, 1, msg(5.0, 1, 0));
        // Nothing queued yet, but the sender's window covers t=5.
        assert_eq!(
            sh.queue_len[1].load(std::sync::atomic::Ordering::Acquire),
            0
        );
        assert!(!sh.window_is_clear(0));
        b.flush(&sh);
        assert_eq!(
            sh.queue_len[1].load(std::sync::atomic::Ordering::Acquire),
            1
        );
        let mut out = Vec::new();
        assert_eq!(sh.drain(1, &mut out), 1);
        assert_eq!(out[0].recv_time(), VirtualTime::from_f64(5.0));
    }

    #[test]
    fn batch_full_flushes_inline_and_preserves_fifo() {
        let sh = shared(2);
        let mut b: SendBatcher<u8> = SendBatcher::new(2, 3);
        for i in 0..7 {
            b.buffer(&sh, 0, 1, msg(1.0 + i as f64, 1, i as u64));
        }
        // cap=3: two inline flushes (at 3 and 6) leave one buffered.
        assert_eq!(
            sh.queue_len[1].load(std::sync::atomic::Ordering::Acquire),
            6
        );
        b.flush(&sh);
        assert!(b.is_empty());
        let mut out = Vec::new();
        assert_eq!(sh.drain(1, &mut out), 7);
        let seqs: Vec<u64> = out.iter().map(|m| m.key().uid.seq).collect();
        assert_eq!(seqs, (0..7).collect::<Vec<_>>(), "per-dst FIFO preserved");
    }

    #[test]
    fn flush_is_idempotent_and_tolerates_duplicate_dirty_entries() {
        let sh = shared(3);
        let mut b: SendBatcher<u8> = SendBatcher::new(3, 2);
        // dst 1 hits cap (inline flush), then gets one more → duplicate
        // dirty entry for dst 1.
        b.buffer(&sh, 0, 1, msg(1.0, 1, 0));
        b.buffer(&sh, 0, 1, msg(2.0, 1, 1));
        b.buffer(&sh, 0, 1, msg(3.0, 1, 2));
        b.buffer(&sh, 0, 2, msg(4.0, 2, 3));
        b.flush(&sh);
        b.flush(&sh);
        assert!(b.is_empty());
        let mut out = Vec::new();
        assert_eq!(sh.drain(1, &mut out), 3);
        out.clear();
        assert_eq!(sh.drain(2, &mut out), 1);
    }
}
