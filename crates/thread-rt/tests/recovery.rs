//! Checkpoint/restart and supervised-recovery tests for the real-thread
//! runtime.
//!
//! The headline invariant: a run that is killed mid-flight and recovered
//! from a GVT-aligned checkpoint commits the *exact* event trace of an
//! uninterrupted run — verified against the sequential oracle, which any
//! correct Time Warp execution must match bit-for-bit.

use models::{LocalityPattern, Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig, FaultPlan, Model};
use sim_rt::SystemConfig;
use std::sync::Arc;
use std::time::Duration;
use thread_rt::{run_supervised, run_threads_resumable, Recovered, RtRunConfig, SupervisorConfig};

fn engine_cfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(77)
        .with_gvt_interval(20)
        .with_zero_counter_threshold(60)
}

fn imbalanced_model(threads: usize) -> Arc<Phold> {
    Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )))
}

fn gg_async() -> SystemConfig {
    SystemConfig::ALL_SIX[5]
}

fn supervisor(max: u32) -> SupervisorConfig {
    // Fast backoff keeps the suite snappy; the doubling itself is covered.
    SupervisorConfig::new(max).with_backoff(Duration::from_millis(1))
}

#[test]
fn checkpointed_run_matches_oracle_and_restores_identically() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);

    // A fault-free checkpointing run must be unaffected by the armed rounds.
    let rc = RtRunConfig::new(threads, ecfg.clone(), gg_async()).with_checkpoint_every(3);
    let attempt = run_threads_resumable(&model, &rc, None, None);
    let r = attempt.outcome.expect("checkpointed run completes");
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(r.digests, oracle.state_digests);
    let ckpt = attempt
        .checkpoint
        .expect("a multi-round run must have assembled a checkpoint");
    assert!(
        ckpt.gvt > pdes_core::VirtualTime::ZERO,
        "cut not at genesis"
    );
    assert_eq!(ckpt.lps.len(), model.num_lps());
    // The newest cut may be anywhere up to the termination round, but never
    // beyond the oracle's committed trace.
    assert!(
        ckpt.total_committed() > 0 && ckpt.total_committed() <= oracle.committed,
        "cut at {} of {}",
        ckpt.total_committed(),
        oracle.committed
    );

    // Restoring that cut into a fresh run must finish on the oracle trace.
    let resumed = run_threads_resumable(&model, &rc, Some(&ckpt), None)
        .outcome
        .expect("resumed run completes");
    assert_eq!(resumed.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(resumed.metrics.committed, oracle.committed);
    assert_eq!(resumed.digests, oracle.state_digests);
}

#[test]
fn supervised_fault_free_run_is_a_pass_through() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let rc = RtRunConfig::new(threads, ecfg, gg_async()).with_checkpoint_every(4);
    let s = run_supervised(&model, &rc, &supervisor(3));
    assert!(s.completed_parallel() && !s.degraded);
    assert_eq!(s.recoveries, 0);
    assert_eq!(s.outcome.commit_digest(), oracle.commit_digest);
}

/// The headline invariant (closing the loop with the PR-1 fault harness):
/// a scripted `WorkerKill` plus supervised recovery commits the exact trace
/// of an uninterrupted run, with the dead worker's LPs remapped onto the
/// survivors.
#[test]
fn kill_and_recover_commits_exact_oracle_trace() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(16.0);
    let oracle = run_sequential(&model, &ecfg, None);
    // Thread 0 carries the imbalanced model's hot LPs, so cycle 120 is
    // reached on every scheduling; later cycles are not guaranteed.
    let plan = FaultPlan::default().with_kill(0, 120);
    let rc = RtRunConfig::new(threads, ecfg, gg_async())
        .with_faults(plan)
        .with_checkpoint_every(2)
        .with_watchdog(Some(Duration::from_secs(30)));
    let s = run_supervised(&model, &rc, &supervisor(3));
    assert!(s.recoveries >= 1, "the kill must fire: {:?}", s.log);
    assert!(
        !s.degraded,
        "one kill is within the retry budget: {:?}",
        s.log
    );
    assert_eq!(
        s.outcome.commit_digest(),
        oracle.commit_digest,
        "trace diverged"
    );
    assert_eq!(s.outcome.committed(), oracle.committed);
    assert_eq!(s.outcome.state_digests(), &oracle.state_digests[..]);
    if let Recovered::Parallel(r) = &s.outcome {
        // When the failure hit after the first checkpoint, the recovered run
        // continued one thread smaller on a remapped LP assignment.
        assert!(r.metrics.threads == threads || r.metrics.threads == threads - 1);
    }
}

/// Graceful degradation: when every retry is killed too, the supervisor
/// finishes the run on the sequential engine from the last consistent cut —
/// it completes instead of erroring, still on the oracle trace.
#[test]
fn recovery_exhaustion_degrades_to_sequential_and_still_completes() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(16.0);
    let oracle = run_sequential(&model, &ecfg, None);
    // Enough scripted kills that every attempt dies: thread 0 always exists,
    // whatever remapping did in between. The cycle counter restarts at zero
    // per attempt and a resumed attempt has less work left, so follow-up
    // kills trigger early to guarantee they land before completion.
    let plan = FaultPlan::default()
        .with_kill(0, 120)
        .with_kill(0, 5)
        .with_kill(0, 5)
        .with_kill(0, 5);
    let rc = RtRunConfig::new(threads, ecfg, gg_async())
        .with_faults(plan)
        .with_checkpoint_every(1)
        .with_watchdog(Some(Duration::from_secs(30)));
    let s = run_supervised(&model, &rc, &supervisor(1));
    assert!(s.degraded, "budget of 1 must be exhausted: {:?}", s.log);
    assert_eq!(s.recoveries, 1);
    assert!(matches!(s.outcome, Recovered::Sequential(_)));
    assert_eq!(s.outcome.commit_digest(), oracle.commit_digest);
    assert_eq!(s.outcome.committed(), oracle.committed);
    assert_eq!(s.outcome.state_digests(), &oracle.state_digests[..]);
}

/// Checkpoints hit disk atomically and a recovered-from-disk run matches.
#[test]
fn checkpoint_file_round_trips_through_disk() {
    use pdes_core::Checkpoint;
    type PholdState = <Phold as pdes_core::Model>::State;
    type PholdPayload = <Phold as pdes_core::Model>::Payload;

    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let dir = std::env::temp_dir().join(format!("ggpdes-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("run.ckpt.json");
    let rc = RtRunConfig::new(threads, ecfg.clone(), gg_async())
        .with_checkpoint_every(3)
        .with_checkpoint_path(path.clone());
    run_threads_resumable::<Phold>(&model, &rc, None, None)
        .outcome
        .expect("checkpointed run completes");
    let ckpt: Checkpoint<PholdState, PholdPayload> =
        Checkpoint::read(&path).expect("checkpoint file parses");
    assert!(!path.with_extension("json.tmp").exists(), "no temp debris");
    let resumed = run_threads_resumable(&model, &rc, Some(&ckpt), None)
        .outcome
        .expect("resume from disk completes");
    assert_eq!(resumed.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(resumed.digests, oracle.state_digests);
    std::fs::remove_dir_all(&dir).ok();
}
