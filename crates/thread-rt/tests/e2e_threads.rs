//! Real-thread end-to-end tests: every configuration, running with genuine
//! concurrency, must commit exactly the sequential oracle's trace.

use models::{LocalityPattern, Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig};
use sim_rt::SystemConfig;
use std::sync::Arc;
use thread_rt::{run_threads, RtRunConfig};

fn engine_cfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(77)
        .with_gvt_interval(20)
        .with_zero_counter_threshold(60)
}

#[test]
fn all_six_systems_match_oracle_with_real_threads() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 4)));
    let ecfg = engine_cfg(6.0);
    let oracle = run_sequential(&model, &ecfg, None);
    assert!(oracle.committed > 50);

    for sys in SystemConfig::ALL_SIX {
        let rc = RtRunConfig::new(threads, ecfg.clone(), sys);
        let r = run_threads(&model, &rc).expect("run completes");
        assert_eq!(r.gvt_regressions, 0, "{} regressed GVT", sys.name());
        assert_eq!(
            r.metrics.committed,
            oracle.committed,
            "{}: committed mismatch",
            sys.name()
        );
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{}: digest mismatch",
            sys.name()
        );
        assert_eq!(r.digests, oracle.state_digests, "{}: states", sys.name());
    }
}

#[test]
fn imbalanced_model_deschedules_and_matches_oracle() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);
    for sys in [SystemConfig::ALL_SIX[3], SystemConfig::ALL_SIX[5]] {
        let rc = RtRunConfig::new(threads, ecfg.clone(), sys);
        let r = run_threads(&model, &rc).expect("run completes");
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{}: digest mismatch",
            sys.name()
        );
    }
}

#[test]
fn oversubscribed_run_completes() {
    // More threads than this host has cores — the demand-driven point.
    let threads = 8;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        2,
        4,
        6.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(6.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let rc = RtRunConfig::new(threads, ecfg, SystemConfig::ALL_SIX[5]);
    let r = run_threads(&model, &rc).expect("run completes");
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(r.metrics.committed, oracle.committed);
}

#[test]
fn repeated_runs_always_match_oracle() {
    // Different interleavings each run; the committed trace must not vary.
    let threads = 3;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 3)));
    let ecfg = engine_cfg(4.0);
    let oracle = run_sequential(&model, &ecfg, None);
    for i in 0..5 {
        let rc = RtRunConfig::new(threads, ecfg.clone(), SystemConfig::ALL_SIX[5]);
        let r = run_threads(&model, &rc).expect("run completes");
        assert_eq!(r.metrics.commit_digest, oracle.commit_digest, "run {i}");
    }
}

#[test]
fn dd_pdes_with_controller_matches_oracle_under_stress() {
    // DD-PDES exercises the controller thread + global lock path.
    let threads = 6;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        3,
        3,
        6.0,
        LocalityPattern::Strided,
    )));
    let ecfg = engine_cfg(6.0);
    let oracle = run_sequential(&model, &ecfg, None);
    for i in 0..3 {
        let rc = RtRunConfig::new(threads, ecfg.clone(), SystemConfig::ALL_SIX[3]);
        let r = run_threads(&model, &rc).expect("run completes");
        assert_eq!(r.metrics.commit_digest, oracle.commit_digest, "run {i}");
        assert_eq!(r.gvt_regressions, 0, "run {i}");
    }
}

#[test]
fn dynamic_affinity_runs_on_real_threads() {
    use sim_rt::{AffinityPolicy, GvtMode, Scheduler};
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        6.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(6.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Dynamic);
    let rc = RtRunConfig::new(threads, ecfg, sys);
    let r = run_threads(&model, &rc).expect("run completes");
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
}

#[test]
fn sparse_snapshots_and_window_on_real_threads() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        6.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(6.0)
        .with_snapshot_period(5)
        .with_optimism_window(Some(1.0));
    let oracle = run_sequential(&model, &ecfg, None);
    let rc = RtRunConfig::new(threads, ecfg, SystemConfig::ALL_SIX[5]);
    let r = run_threads(&model, &rc).expect("run completes");
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(r.digests, oracle.state_digests);
}
