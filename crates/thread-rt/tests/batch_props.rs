//! Property tests of the batched inter-thread send plane.
//!
//! The batcher sits between the engine's outbox and the destination
//! queues, so its two contracts are load-bearing for correctness:
//!
//! 1. **No loss** — every buffered message eventually lands in its
//!    destination queue, whatever the interleaving of buffers, inline
//!    batch-full flushes, explicit flushes, and drains.
//! 2. **Per-(src,dst) FIFO** — a destination drains one sender's messages
//!    in send order. This is the ordering the engine relies on so an
//!    anti-message can never overtake the re-send of its twin.
//!
//! Both are checked under arbitrary operation schedules, and the no-loss /
//! per-uid-FIFO half additionally under the chaos drain (delay + reorder +
//! straggler holds), which is allowed to permute *between* uids but never
//! within one.

use pdes_core::{Event, EventKey, EventUid, FaultInjector, FaultPlan, LpId, Msg, VirtualTime};
use proptest::prelude::*;
use thread_rt::batch::SendBatcher;
use thread_rt::shared::RtShared;

const DSTS: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    /// Buffer a message for `dst`; `pair` additionally buffers the
    /// matching anti-message right behind it (same uid — the ordered pair
    /// the chaos drain must never split or swap).
    Send { dst: usize, pair: bool },
    /// Flush the whole batcher.
    Flush,
    /// Drain destination `dst`, recording what arrived.
    Drain(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0..DSTS), any::<bool>()).prop_map(|(dst, pair)| Op::Send { dst, pair }),
            Just(Op::Flush),
            (0..DSTS).prop_map(Op::Drain),
        ],
        0..120,
    )
}

fn msg(t: u64, dst: usize, seq: u64) -> Msg<u8> {
    Msg::Event(Event {
        key: EventKey {
            recv_time: VirtualTime::from_ticks(t),
            dst: LpId(dst as u32),
            uid: EventUid::new(LpId(0), seq),
        },
        send_time: VirtualTime::ZERO,
        payload: 0,
    })
}

fn anti(t: u64, dst: usize, seq: u64) -> Msg<u8> {
    Msg::Anti(EventKey {
        recv_time: VirtualTime::from_ticks(t),
        dst: LpId(dst as u32),
        uid: EventUid::new(LpId(0), seq),
    })
}

/// Identity of a delivered message for order/loss accounting: (uid seq,
/// is_anti) is unique per run because seqs are never reused.
fn ident(m: &Msg<u8>) -> (u64, bool) {
    (m.key().uid.seq, m.is_anti())
}

proptest! {
    /// Clean drains: exact per-destination FIFO, nothing lost, nothing
    /// duplicated, under arbitrary buffer/flush/drain schedules and every
    /// batch cap from degenerate (1 = unbatched) upward.
    #[test]
    fn batched_sends_preserve_fifo_and_lose_nothing(
        ops in arb_ops(),
        cap in 1usize..9,
    ) {
        let sh: RtShared<u8> = RtShared::new(DSTS, 1, VirtualTime::from_ticks(u64::MAX));
        let mut batcher: SendBatcher<u8> = SendBatcher::new(DSTS, cap);
        let mut expected: Vec<Vec<(u64, bool)>> = vec![Vec::new(); DSTS];
        let mut got: Vec<Vec<(u64, bool)>> = vec![Vec::new(); DSTS];
        let mut seq = 0u64;
        let mut buf = Vec::new();

        for op in ops {
            match op {
                Op::Send { dst, pair } => {
                    let t = 10 + seq;
                    let m = msg(t, dst, seq);
                    expected[dst].push(ident(&m));
                    batcher.buffer(&sh, 0, dst, m);
                    if pair {
                        let a = anti(t, dst, seq);
                        expected[dst].push(ident(&a));
                        batcher.buffer(&sh, 0, dst, a);
                    }
                    seq += 1;
                }
                Op::Flush => batcher.flush(&sh),
                Op::Drain(dst) => {
                    buf.clear();
                    sh.drain(dst, &mut buf);
                    got[dst].extend(buf.iter().map(ident));
                }
            }
        }
        batcher.flush(&sh);
        prop_assert!(batcher.is_empty(), "flush leaves nothing behind");
        for dst in 0..DSTS {
            buf.clear();
            sh.drain(dst, &mut buf);
            got[dst].extend(buf.iter().map(ident));
            prop_assert_eq!(
                &got[dst], &expected[dst],
                "dst {} must drain sender 0's messages in send order", dst
            );
        }
    }

    /// Chaos drains (delay + reorder + straggler holds): inter-uid order
    /// may be permuted, but nothing is lost or duplicated and an
    /// anti-message never splits from or overtakes its positive twin.
    #[test]
    fn chaos_drains_lose_nothing_and_keep_uid_pairs_ordered(
        ops in arb_ops(),
        cap in 1usize..9,
        chaos_seed in 0u64..1024,
    ) {
        let mut sh: RtShared<u8> = RtShared::new(DSTS, 1, VirtualTime::from_ticks(u64::MAX));
        sh.set_faults(FaultInjector::new(FaultPlan::chaos(chaos_seed)));
        let mut batcher: SendBatcher<u8> = SendBatcher::new(DSTS, cap);
        let mut expected: Vec<Vec<(u64, bool)>> = vec![Vec::new(); DSTS];
        let mut got: Vec<Vec<(u64, bool)>> = vec![Vec::new(); DSTS];
        let mut seq = 0u64;
        let mut buf = Vec::new();

        for op in ops {
            match op {
                Op::Send { dst, pair } => {
                    let t = 10 + seq;
                    let m = msg(t, dst, seq);
                    expected[dst].push(ident(&m));
                    batcher.buffer(&sh, 0, dst, m);
                    if pair {
                        let a = anti(t, dst, seq);
                        expected[dst].push(ident(&a));
                        batcher.buffer(&sh, 0, dst, a);
                    }
                    seq += 1;
                }
                Op::Flush => batcher.flush(&sh),
                Op::Drain(dst) => {
                    buf.clear();
                    sh.drain(dst, &mut buf);
                    got[dst].extend(buf.iter().map(ident));
                }
            }
        }
        batcher.flush(&sh);
        // A chaos drain may hold everything back and report 0 delivered, so
        // a zero return does not mean empty. Held messages never leave
        // `queue_len` accounting — that counter reaching zero is the real
        // emptiness signal. Each held message redelivers at the front of a
        // later drain, so this terminates (bounded here as a backstop).
        for (dst, got_dst) in got.iter_mut().enumerate() {
            let mut rounds = 0;
            while sh.queue_len[dst].load(std::sync::atomic::Ordering::Acquire) > 0 {
                buf.clear();
                sh.drain(dst, &mut buf);
                got_dst.extend(buf.iter().map(ident));
                rounds += 1;
                prop_assert!(rounds < 100_000, "dst {}: chaos drain never emptied", dst);
            }
        }
        for dst in 0..DSTS {
            let mut want = expected[dst].clone();
            let mut have = got[dst].clone();
            want.sort_unstable();
            have.sort_unstable();
            prop_assert_eq!(have, want, "dst {}: lost or duplicated messages", dst);
            // Per-uid FIFO: the positive of a pair must still precede its
            // anti after any chaos permutation.
            for (seq, is_anti) in &got[dst] {
                if *is_anti {
                    let pos = got[dst].iter().position(|x| x == &(*seq, false));
                    let neg = got[dst].iter().position(|x| x == &(*seq, true));
                    prop_assert!(
                        pos.is_some() && pos < neg,
                        "dst {}: anti of uid {} overtook its twin", dst, seq
                    );
                }
            }
        }
    }
}
