//! Chaos-harness tests for the real-thread runtime.
//!
//! Two families:
//! - *Safe* fault plans (delivery delays, reordering, straggler storms,
//!   backpressure) perturb timing only — every run must still commit
//!   exactly the sequential oracle's trace.
//! - *Liveness* fault plans (lost wake-ups) wedge the run — the watchdog
//!   must convert the hang into a structured diagnostic dump, and the same
//!   seed with faults disabled must match the oracle bit-for-bit.

use models::{LocalityPattern, Phold, PholdConfig};
use pdes_core::{
    run_sequential, DelayFault, EngineConfig, FaultPlan, ReorderFault, StragglerFault, WakeupFault,
};
use sim_rt::SystemConfig;
use std::sync::Arc;
use std::time::Duration;
use thread_rt::{run_threads, RtRunConfig, RunError};

fn engine_cfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(77)
        .with_gvt_interval(20)
        .with_zero_counter_threshold(60)
}

/// An imbalanced model that deactivates and reactivates threads — the
/// traffic pattern the wake-up faults need.
fn imbalanced_model(threads: usize) -> Arc<Phold> {
    Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )))
}

/// GG-PDES-Async: the headline demand-driven system.
fn gg_async() -> SystemConfig {
    SystemConfig::ALL_SIX[5]
}

#[test]
fn safe_fault_plans_match_oracle() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let plan = FaultPlan {
        seed: 0xC0FFEE,
        delay: Some(DelayFault { prob: 0.2 }),
        reorder: Some(ReorderFault { prob: 0.5 }),
        straggler: Some(StragglerFault {
            prob: 0.05,
            max_storms: 16,
        }),
        backpressure: Some(pdes_core::BackpressureFault {
            capacity: 64,
            max_retries: 3,
        }),
        ..FaultPlan::default()
    };
    for sys in [SystemConfig::ALL_SIX[3], gg_async()] {
        let rc = RtRunConfig::new(threads, ecfg.clone(), sys).with_faults(plan.clone());
        let r = run_threads(&model, &rc).expect("safe faults must not wedge the run");
        assert_eq!(r.gvt_regressions, 0, "{}: GVT regressed", sys.name());
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{}: digest diverged under safe faults",
            sys.name()
        );
        assert_eq!(r.digests, oracle.state_digests, "{}: states", sys.name());
        let c = r.fault_counts;
        assert!(
            c.delayed + c.reordered + c.stragglers > 0,
            "{}: plan was supposed to fire (counts {c:?})",
            sys.name()
        );
    }
}

#[test]
fn default_chaos_plan_matches_oracle() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let rc = RtRunConfig::new(threads, ecfg, gg_async()).with_faults(FaultPlan::chaos(42));
    let r = run_threads(&model, &rc).expect("chaos plan is safe");
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(r.metrics.committed, oracle.committed);
}

#[test]
fn spurious_wakeups_are_tolerated() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let plan = FaultPlan {
        seed: 9,
        wakeup: Some(WakeupFault {
            lose_prob: 0.0,
            spurious_prob: 0.8,
            max_lost: 0,
        }),
        ..FaultPlan::default()
    };
    let rc = RtRunConfig::new(threads, ecfg, gg_async()).with_faults(plan);
    let r = run_threads(&model, &rc).expect("spurious wake-ups must be tolerated");
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
}

/// The acceptance scenario: a lost-wakeup plan on GG-PDES-Async terminates
/// via the watchdog with a per-thread dump — no hang, no process abort —
/// while the same seed with faults disabled matches the oracle bit-for-bit.
#[test]
fn lost_wakeup_trips_watchdog_with_dump_and_clean_seed_matches_oracle() {
    let threads = 4;
    // Epoch 2.0 over a 40.0 run: nineteen activity-group shifts, each one a
    // deactivation/reactivation cycle for the lost-wakeup fault to hit. The
    // run must be long (hundreds of GVT rounds) so that parked threads are
    // guaranteed to have mail at some Aware phase regardless of how the
    // host schedules the workers.
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        8,
        2,
        4.0,
        LocalityPattern::Linear,
    )));
    // A prompt deactivation threshold: under a loaded host a worker may
    // never accumulate 60 consecutive idle polls before its idle epoch is
    // over, and would then never park at all.
    let ecfg = engine_cfg(40.0).with_zero_counter_threshold(8);
    let oracle = run_sequential(&model, &ecfg, None);

    // Faults disabled: bit-for-bit oracle match.
    let rc = RtRunConfig::new(threads, ecfg.clone(), gg_async());
    let clean = run_threads(&model, &rc).expect("fault-free run completes");
    assert_eq!(clean.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(clean.metrics.committed, oracle.committed);
    assert_eq!(clean.digests, oracle.state_digests);
    assert!(
        clean.metrics.max_descheduled > 0,
        "model must deactivate threads for the lost-wakeup fault to bite"
    );

    // Same seed, every activation wake-up lost: the first reactivation
    // permanently parks a subscribed thread and the round can never close.
    let plan = FaultPlan {
        seed: 77,
        wakeup: Some(WakeupFault {
            lose_prob: 1.0,
            spurious_prob: 0.0,
            max_lost: u64::MAX,
        }),
        ..FaultPlan::default()
    };
    let rc = RtRunConfig::new(threads, ecfg, gg_async())
        .with_faults(plan)
        .with_watchdog(Some(Duration::from_millis(1500)));
    // Whether an activation (the faulted site) is ever *needed* depends on
    // thread interleaving: a run can finish before any parked thread has
    // mail. Completing is only legal when the fault never fired; retry
    // until a wake-up is actually lost — then the watchdog must trip.
    for _attempt in 0..10 {
        match run_threads(&model, &rc) {
            Err(RunError::Stalled(dump)) => {
                assert!(dump.fault_counts.lost_wakeups > 0, "the fault fired");
                assert_eq!(dump.threads.len(), threads);
                assert!(
                    dump.threads.iter().any(|t| t.phase == "parked"),
                    "the stranded thread shows up parked: {dump}"
                );
                let text = dump.to_string();
                assert!(text.contains("liveness watchdog"));
                assert!(text.contains("no GVT progress"));
                return;
            }
            Err(other) => panic!("expected a stall, got: {other}"),
            Ok(r) => assert_eq!(
                r.fault_counts.lost_wakeups, 0,
                "a run that lost a wake-up must stall, not complete"
            ),
        }
    }
    panic!("no activation was ever attempted in 10 runs — the model no longer deactivates threads");
}

#[test]
fn fault_free_run_never_trips_tight_watchdog() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(8.0);
    let rc =
        RtRunConfig::new(threads, ecfg, gg_async()).with_watchdog(Some(Duration::from_secs(1)));
    let r = run_threads(&model, &rc).expect("healthy run must never trip the watchdog");
    assert_eq!(r.fault_counts, pdes_core::FaultCounts::default());
}

#[test]
fn worker_panic_is_reported_not_hung() {
    // A model whose LP state update panics mid-run on one thread: the
    // runner must report the panic and join every sibling.
    struct Bomb {
        inner: Phold,
    }
    impl pdes_core::Model for Bomb {
        type Payload = <Phold as pdes_core::Model>::Payload;
        type State = <Phold as pdes_core::Model>::State;
        fn num_lps(&self) -> usize {
            self.inner.num_lps()
        }
        fn init_state(&self, lp: pdes_core::LpId) -> Self::State {
            self.inner.init_state(lp)
        }
        fn init_events(
            &self,
            lp: pdes_core::LpId,
            state: &mut Self::State,
            ctx: &mut pdes_core::SendCtx<'_, Self::Payload>,
        ) {
            self.inner.init_events(lp, state, ctx)
        }
        fn handle_event(
            &self,
            lp: pdes_core::LpId,
            state: &mut Self::State,
            payload: &Self::Payload,
            ctx: &mut pdes_core::SendCtx<'_, Self::Payload>,
        ) {
            if ctx.now() > pdes_core::VirtualTime::from_f64(3.0) && lp.0 == 0 {
                panic!("injected test panic");
            }
            self.inner.handle_event(lp, state, payload, ctx)
        }
        fn state_digest(&self, state: &Self::State) -> u64 {
            self.inner.state_digest(state)
        }
    }
    let threads = 4;
    let model = Arc::new(Bomb {
        inner: Phold::new(PholdConfig::balanced(threads, 4)),
    });
    let ecfg = engine_cfg(8.0);
    let rc =
        RtRunConfig::new(threads, ecfg, gg_async()).with_watchdog(Some(Duration::from_secs(5)));
    match run_threads(&model, &rc) {
        Err(RunError::WorkerPanicked { message, .. }) => {
            assert!(message.contains("injected test panic"), "got: {message}");
        }
        Err(other) => panic!("expected a worker panic, got: {other}"),
        Ok(_) => panic!("the bomb must go off"),
    }
}

/// Panic beats stall: a dead worker freezes GVT, so the liveness watchdog
/// *will* trip while the siblings are being torn down — but the root cause
/// is the panic, and that is what the runner must report. (The watchdog
/// trip is load-bearing here: it is what unwedges the siblings so `join`
/// returns at all.)
#[test]
fn worker_panic_beats_watchdog_stall() {
    struct EarlyBomb {
        inner: Phold,
    }
    impl pdes_core::Model for EarlyBomb {
        type Payload = <Phold as pdes_core::Model>::Payload;
        type State = <Phold as pdes_core::Model>::State;
        fn num_lps(&self) -> usize {
            self.inner.num_lps()
        }
        fn init_state(&self, lp: pdes_core::LpId) -> Self::State {
            self.inner.init_state(lp)
        }
        fn init_events(
            &self,
            lp: pdes_core::LpId,
            state: &mut Self::State,
            ctx: &mut pdes_core::SendCtx<'_, Self::Payload>,
        ) {
            self.inner.init_events(lp, state, ctx)
        }
        fn handle_event(
            &self,
            lp: pdes_core::LpId,
            state: &mut Self::State,
            payload: &Self::Payload,
            ctx: &mut pdes_core::SendCtx<'_, Self::Payload>,
        ) {
            // Die on LP 0's very first post-genesis event: GVT never
            // advances, so the watchdog is guaranteed to fire afterwards.
            if lp.0 == 0 && ctx.now() > pdes_core::VirtualTime::ZERO {
                panic!("early injected panic");
            }
            self.inner.handle_event(lp, state, payload, ctx)
        }
        fn state_digest(&self, state: &Self::State) -> u64 {
            self.inner.state_digest(state)
        }
    }
    let threads = 4;
    let model = Arc::new(EarlyBomb {
        inner: Phold::new(PholdConfig::balanced(threads, 4)),
    });
    let ecfg = engine_cfg(8.0);
    let rc =
        RtRunConfig::new(threads, ecfg, gg_async()).with_watchdog(Some(Duration::from_millis(300)));
    match run_threads(&model, &rc) {
        Err(RunError::WorkerPanicked { message, .. }) => {
            assert!(message.contains("early injected panic"), "got: {message}");
        }
        Err(RunError::Stalled(dump)) => {
            panic!("watchdog trip masked the worker panic: {dump}")
        }
        Err(other) => panic!("unexpected failure mode: {other}"),
        Ok(_) => panic!("the bomb must go off"),
    }
}
