//! Telemetry on real threads: round snapshots must track GVT monotonically,
//! ring accounting must conserve records, and both GVT modes must emit the
//! phase set `trace_check` requires.

use models::{Phold, PholdConfig};
use pdes_core::EngineConfig;
use sim_rt::{AffinityPolicy, GvtMode, Scheduler, SystemConfig};
use std::sync::Arc;
use telemetry::{EventKind, TelemetryConfig, TelemetryData};
use thread_rt::{run_threads, RtRunConfig};

fn engine_cfg() -> EngineConfig {
    EngineConfig::default()
        .with_end_time(6.0)
        .with_seed(77)
        .with_gvt_interval(20)
        .with_zero_counter_threshold(60)
}

fn run_traced(gvt: GvtMode) -> (TelemetryData, metrics::RunMetrics) {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 4)));
    let sys = SystemConfig::new(Scheduler::GgPdes, gvt, AffinityPolicy::Constant);
    let rc = RtRunConfig::new(threads, engine_cfg(), sys).with_telemetry(TelemetryConfig::on());
    let r = run_threads(&model, &rc).expect("run completes");
    (r.telemetry.expect("telemetry collected"), r.metrics)
}

fn phase_names(data: &TelemetryData) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = data
        .threads
        .iter()
        .flat_map(|t| t.records.iter())
        .map(|r| r.kind.name())
        .collect();
    names.sort_unstable();
    names.dedup();
    names
}

#[test]
fn telemetry_is_off_by_default() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 4)));
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
    let rc = RtRunConfig::new(threads, engine_cfg(), sys);
    let r = run_threads(&model, &rc).expect("run completes");
    assert!(r.telemetry.is_none());
    assert!(r.metrics.last_round.is_none());
}

#[test]
fn async_round_snapshots_track_gvt_monotonically() {
    let (data, m) = run_traced(GvtMode::Async);
    assert!(!data.rounds.is_empty(), "no round snapshots recorded");
    for w in data.rounds.windows(2) {
        assert!(
            w[1].gvt_ticks >= w[0].gvt_ticks,
            "round {} GVT {} regressed below round {} GVT {}",
            w[1].round,
            w[1].gvt_ticks,
            w[0].round,
            w[0].gvt_ticks
        );
        assert!(w[1].ts_ns >= w[0].ts_ns, "round close times went backwards");
    }
    // Every snapshot carries a per-thread LVT and queue-depth vector.
    for r in &data.rounds {
        assert_eq!(r.lvt_ticks.len(), 4);
        assert_eq!(r.queue_depths.len(), 4);
        assert!(r.active_threads <= 4);
    }
    // The final snapshot surfaces through RunMetrics (and so --stats-json).
    let last = m.last_round.expect("last round in metrics");
    assert_eq!(last, data.rounds.last().cloned().expect("rounds nonempty"));
}

#[test]
fn ring_accounting_conserves_and_trace_exports() {
    let (data, _) = run_traced(GvtMode::Async);
    assert_eq!(data.threads.len(), 4);
    for t in &data.threads {
        assert_eq!(
            t.dropped + t.records.len() as u64,
            t.emitted,
            "thread {} ring accounting leaked",
            t.tid
        );
    }
    let json = telemetry::chrome_trace_json(&data);
    serde_json::parse(&json).expect("exporter emits valid JSON");
    let names = phase_names(&data);
    for required in ["gvt-a", "gvt-b", "gvt-aware", "gvt-end"] {
        assert!(names.contains(&required), "{required} missing: {names:?}");
    }
    assert!(
        names.contains(&"gvt-send-a") || names.contains(&"gvt-send-b"),
        "no send phase in {names:?}"
    );
}

#[test]
fn sync_mode_emits_the_required_phase_set_too() {
    let (data, _) = run_traced(GvtMode::Sync);
    let names = phase_names(&data);
    for required in ["gvt-a", "gvt-b", "gvt-aware", "gvt-end", "gvt-send-b"] {
        assert!(names.contains(&required), "{required} missing: {names:?}");
    }
    // Every sync round is barrier-closed, so rounds recorded exactly once.
    let mut ids: Vec<u64> = data.rounds.iter().map(|r| r.round).collect();
    let n = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), n, "a round was snapshotted twice");
}

#[test]
fn gvt_phase_spans_carry_the_round_id() {
    let (data, _) = run_traced(GvtMode::Async);
    let round_ids: Vec<u64> = data.rounds.iter().map(|r| r.round).collect();
    let mut checked = 0;
    for t in &data.threads {
        for r in &t.records {
            if matches!(r.kind, EventKind::GvtA | EventKind::GvtEnd) {
                assert!(
                    round_ids.contains(&r.arg) || r.arg > *round_ids.last().unwrap_or(&0),
                    "span round id {} unknown",
                    r.arg
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "no GVT phase spans traced");
}
