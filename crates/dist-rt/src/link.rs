//! Reliable, in-order links over unreliable packet transports.
//!
//! The simulation protocol ([`crate::proto`]) assumes exactly-once in-order
//! delivery per directed link. This layer provides it over two transports:
//!
//! - [`MemTx`] — pushes packet bytes straight into the peer's [`Inbox`]
//!   (in-process nodes; deterministic under [`crate::launcher::SteppedCluster`]).
//! - [`TcpTx`] — writes `u32`-length-prefixed packets to a `TcpStream`; a
//!   reader thread per stream pushes received packets into the node's inbox.
//!
//! Link faults ([`LinkFaults`]) are applied at the *sender*, below the
//! reliability machinery: a dropped packet simply stays unacked and is
//! retransmitted, a duplicate is discarded by the receiver's sequence
//! window, a delayed packet sits in the sender's delay buffer for a few
//! pumps. Faults apply to retransmissions and acks too — the drop/duplicate
//! budgets in [`pdes_core::LinkFaultPlan`] are what keep the link live.

use pdes_core::LinkFaults;
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::wire::{read_frame, write_frame, WireError};

/// Retransmit all unacked packets after this many pumps without progress.
const RETRANSMIT_EVERY: u64 = 8;

/// One packet on the unreliable transport: either sequenced data (a wire
/// frame) or a cumulative ack ("I have delivered every seq `< upto`").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    Data { seq: u64, payload: Vec<u8> },
    Ack { upto: u64 },
}

impl Packet {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Packet::Data { seq, payload } => {
                let mut out = Vec::with_capacity(9 + payload.len());
                out.push(0u8);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(payload);
                out
            }
            Packet::Ack { upto } => {
                let mut out = Vec::with_capacity(9);
                out.push(1u8);
                out.extend_from_slice(&upto.to_le_bytes());
                out
            }
        }
    }

    pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
        let (&tag, rest) = bytes
            .split_first()
            .ok_or_else(|| WireError("empty packet".into()))?;
        if rest.len() < 8 {
            return Err(WireError("truncated packet header".into()));
        }
        let n = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
        match tag {
            0 => Ok(Packet::Data {
                seq: n,
                payload: rest[8..].to_vec(),
            }),
            1 if rest.len() == 8 => Ok(Packet::Ack { upto: n }),
            1 => Err(WireError("ack packet with trailing bytes".into())),
            other => Err(WireError(format!("unknown packet tag {other}"))),
        }
    }
}

/// A node's shared receive queue: `(peer, packet bytes)` pairs pushed by
/// memory links or TCP reader threads. An empty byte vector is the
/// link-closed sentinel (peer hung up / reader errored).
#[derive(Debug, Default)]
pub struct Inbox {
    q: Mutex<VecDeque<(usize, Vec<u8>)>>,
    cv: Condvar,
}

impl Inbox {
    pub fn new() -> Arc<Inbox> {
        Arc::new(Inbox::default())
    }

    pub fn push(&self, peer: usize, bytes: Vec<u8>) {
        self.q
            .lock()
            .expect("inbox poisoned")
            .push_back((peer, bytes));
        self.cv.notify_all();
    }

    /// Take everything queued right now (never blocks).
    pub fn drain(&self) -> Vec<(usize, Vec<u8>)> {
        self.q.lock().expect("inbox poisoned").drain(..).collect()
    }

    /// Block until something arrives or `timeout` elapses, then drain.
    pub fn wait_drain(&self, timeout: Duration) -> Vec<(usize, Vec<u8>)> {
        let g = self.q.lock().expect("inbox poisoned");
        let (mut g, _) = self
            .cv
            .wait_timeout_while(g, timeout, |q| q.is_empty())
            .expect("inbox poisoned");
        g.drain(..).collect()
    }

    /// Block until something arrives or `timeout` elapses, leaving the
    /// queue intact. Returns `true` if packets are waiting.
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        let g = self.q.lock().expect("inbox poisoned");
        let (g, _) = self
            .cv
            .wait_timeout_while(g, timeout, |q| q.is_empty())
            .expect("inbox poisoned");
        !g.is_empty()
    }

    pub fn is_empty(&self) -> bool {
        self.q.lock().expect("inbox poisoned").is_empty()
    }
}

/// The unreliable packet transmitter a [`ReliableLink`] writes to.
pub trait FrameTx: Send {
    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Sever the underlying transport. Socket transports shut the socket
    /// down at the OS level so *every* clone of it (including blocked
    /// reader threads on both ends) sees EOF; default is a no-op.
    fn hangup(&mut self) {}
}

/// In-memory transport: packets land directly in the peer's inbox, tagged
/// with the sending shard's id.
pub struct MemTx {
    pub peer_inbox: Arc<Inbox>,
    pub from: usize,
}

impl FrameTx for MemTx {
    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.peer_inbox.push(self.from, bytes.to_vec());
        Ok(())
    }
}

/// TCP transport: packets are written as `u32`-length-prefixed frames.
pub struct TcpTx {
    pub stream: TcpStream,
}

impl FrameTx for TcpTx {
    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        write_frame(&mut self.stream, bytes)
    }

    fn hangup(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Spawn the reader thread for one TCP peer: pushes every received packet
/// into `inbox` tagged with `peer`; pushes the empty-bytes closed sentinel
/// and exits on EOF or error.
pub fn spawn_tcp_reader(
    mut stream: TcpStream,
    peer: usize,
    inbox: Arc<Inbox>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dist-rx-{peer}"))
        .spawn(move || loop {
            match read_frame(&mut stream) {
                Ok(Some(bytes)) => inbox.push(peer, bytes),
                Ok(None) | Err(_) => {
                    inbox.push(peer, Vec::new());
                    return;
                }
            }
        })
        .expect("spawn reader thread")
}

/// Raw `Hello` preamble, written by the connecting side before the reliable
/// layer starts: `[magic u32][protocol version u32][shard u32]`, all
/// little-endian. The magic rejects strangers (port scanners, a mis-typed
/// endpoint) and the version rejects mismatched builds with a clear error
/// instead of a decode failure mid-run.
pub fn write_hello(stream: &mut TcpStream, shard: usize) -> std::io::Result<()> {
    let mut buf = [0u8; 12];
    buf[..4].copy_from_slice(&crate::proto::HELLO_MAGIC.to_le_bytes());
    buf[4..8].copy_from_slice(&crate::proto::PROTOCOL_VERSION.to_le_bytes());
    buf[8..].copy_from_slice(&(shard as u32).to_le_bytes());
    stream.write_all(&buf)
}

pub fn read_hello(stream: &mut TcpStream) -> std::io::Result<usize> {
    let mut buf = [0u8; 12];
    stream.read_exact(&mut buf)?;
    let magic = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if magic != crate::proto::HELLO_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("not a ggpdes peer (bad hello magic {magic:#x})"),
        ));
    }
    if version != crate::proto::PROTOCOL_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "protocol version mismatch: peer speaks v{version}, this build speaks v{}",
                crate::proto::PROTOCOL_VERSION
            ),
        ));
    }
    Ok(u32::from_le_bytes(buf[8..].try_into().expect("4 bytes")) as usize)
}

/// Capped exponential backoff with deterministic jitter, shared by the
/// startup mesh handshake and runtime reconnect so both retry policies stay
/// identical. Delays grow `base × 2^attempt` up to `cap`, each stretched by
/// a ±25% splitmix64 jitter keyed on `(seed, attempt)`.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
    attempt: u32,
}

/// splitmix64 — the same decision hash `pdes-core` uses for fault streams.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Backoff {
    /// The policy every connect/reconnect path uses: 2 ms doubling to a
    /// 200 ms cap.
    pub fn standard(seed: u64) -> Backoff {
        Backoff {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(200),
            seed,
            attempt: 0,
        }
    }

    /// Next delay to sleep before retrying (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self
            .base
            .saturating_mul(1u32 << exp.min(16))
            .min(self.cap)
            .as_nanos() as u64;
        // Jitter in [0.75, 1.25): keyed, so retry schedules are reproducible.
        let j = splitmix64(self.seed.wrapping_add(u64::from(self.attempt)));
        let num = 750_000 + (j % 500_000);
        Duration::from_nanos(raw / 1_000_000 * num + (raw % 1_000_000) * num / 1_000_000)
    }

    /// Attempts made so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

/// One direction of a reliable link: sequences outgoing frames, retransmits
/// until cumulatively acked, and reorders/dedups incoming ones.
pub struct ReliableLink {
    tx: Box<dyn FrameTx>,
    faults: Option<LinkFaults>,
    /// Scripted transient partition: while set, *nothing* leaves this side —
    /// data, retransmissions, and acks all vanish on the floor. Unacked
    /// frames are retained, so retransmission resumes delivery on heal.
    partitioned: bool,
    // Sender side.
    send_next: u64,
    unacked: VecDeque<(u64, Vec<u8>)>, // (seq, encoded Data packet)
    delayed: Vec<(u64, Vec<u8>)>,      // (release_pump, encoded packet)
    // Receiver side.
    recv_next: u64,
    ooo: BTreeMap<u64, Vec<u8>>,
    last_acked_out: u64,
    need_ack: bool,
    // Pump clock.
    pumps: u64,
    last_progress: u64,
    /// Frames handed to [`Self::send`] (diagnostics).
    pub frames_sent: u64,
    /// Frames delivered in order by [`Self::on_packet`] (diagnostics).
    pub frames_delivered: u64,
    /// Retransmission episodes (diagnostics).
    pub retransmits: u64,
}

impl ReliableLink {
    pub fn new(tx: Box<dyn FrameTx>, faults: Option<LinkFaults>) -> ReliableLink {
        ReliableLink {
            tx,
            faults,
            partitioned: false,
            send_next: 0,
            unacked: VecDeque::new(),
            delayed: Vec::new(),
            recv_next: 0,
            ooo: BTreeMap::new(),
            last_acked_out: 0,
            need_ack: false,
            pumps: 0,
            last_progress: 0,
            frames_sent: 0,
            frames_delivered: 0,
            retransmits: 0,
        }
    }

    /// Queue one wire frame for reliable delivery and transmit it (subject
    /// to link faults).
    pub fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let seq = self.send_next;
        self.send_next += 1;
        self.frames_sent += 1;
        let pkt = Packet::Data {
            seq,
            payload: frame.to_vec(),
        }
        .encode();
        self.unacked.push_back((seq, pkt.clone()));
        self.transmit(pkt)
    }

    /// Start or heal a scripted partition on this direction of the link.
    pub fn set_partitioned(&mut self, on: bool) {
        self.partitioned = on;
    }

    /// `true` while a scripted partition swallows this side's output.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Sever the underlying transport (recovery teardown of a dead peer's
    /// links): socket-level, so blocked readers on both ends unblock.
    pub fn hangup(&mut self) {
        self.tx.hangup();
    }

    /// Push one packet through the fault decider and (maybe) the transport.
    fn transmit(&mut self, pkt: Vec<u8>) -> std::io::Result<()> {
        use pdes_core::LinkAction::*;
        if self.partitioned {
            return Ok(()); // data stays unacked; acks are regenerated
        }
        match self.faults.as_mut().map_or(Deliver, |f| f.decide()) {
            Deliver => self.tx.send(&pkt),
            Drop => Ok(()), // stays unacked; retransmission recovers it
            Duplicate => {
                self.tx.send(&pkt)?;
                self.tx.send(&pkt)
            }
            Delay(pumps) => {
                self.delayed.push((self.pumps + pumps as u64, pkt));
                Ok(())
            }
        }
    }

    /// Handle one packet received from the peer. Returns the wire frames
    /// now deliverable **in order**.
    pub fn on_packet(&mut self, bytes: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
        match Packet::decode(bytes)? {
            Packet::Data { seq, payload } => {
                let mut out = Vec::new();
                self.need_ack = true;
                if seq >= self.recv_next {
                    self.ooo.insert(seq, payload);
                    while let Some(p) = self.ooo.remove(&self.recv_next) {
                        self.recv_next += 1;
                        self.frames_delivered += 1;
                        out.push(p);
                    }
                }
                // seq < recv_next: duplicate — discard, but re-ack so a
                // lost ack does not stall the sender forever.
                Ok(out)
            }
            Packet::Ack { upto } => {
                let before = self.unacked.len();
                while self.unacked.front().is_some_and(|(s, _)| *s < upto) {
                    self.unacked.pop_front();
                }
                if self.unacked.len() != before {
                    self.last_progress = self.pumps;
                }
                Ok(Vec::new())
            }
        }
    }

    /// Advance the link one tick: release due delayed packets, retransmit
    /// stalled unacked ones, and send a cumulative ack if owed.
    pub fn pump(&mut self) -> std::io::Result<()> {
        self.pumps += 1;
        if !self.delayed.is_empty() {
            let due: Vec<Vec<u8>> = {
                let pumps = self.pumps;
                let mut rest = Vec::new();
                let mut due = Vec::new();
                for (at, pkt) in self.delayed.drain(..) {
                    if at <= pumps {
                        due.push(pkt);
                    } else {
                        rest.push((at, pkt));
                    }
                }
                self.delayed = rest;
                due
            };
            for pkt in due {
                if self.partitioned {
                    continue; // swallowed; retransmission recovers data
                }
                self.tx.send(&pkt)?; // already rolled its fault at send time
            }
        }
        if !self.unacked.is_empty() && self.pumps - self.last_progress >= RETRANSMIT_EVERY {
            self.last_progress = self.pumps;
            self.retransmits += 1;
            let pkts: Vec<Vec<u8>> = self.unacked.iter().map(|(_, p)| p.clone()).collect();
            for pkt in pkts {
                self.transmit(pkt)?;
            }
        }
        if !self.partitioned && (self.need_ack || self.recv_next > self.last_acked_out) {
            self.need_ack = false;
            self.last_acked_out = self.recv_next;
            let ack = Packet::Ack {
                upto: self.recv_next,
            }
            .encode();
            self.transmit(ack)?;
        }
        Ok(())
    }

    /// `true` when nothing is awaiting ack or sitting in the delay buffer.
    pub fn drained(&self) -> bool {
        self.unacked.is_empty() && self.delayed.is_empty()
    }

    /// Stop injecting faults (teardown: once the GVT machinery has proven
    /// every data frame delivered, the remaining ack/`Done` exchange runs
    /// on the clean underlying transport so termination converges).
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::LinkFaultPlan;

    #[test]
    fn packet_codec_round_trips() {
        for p in [
            Packet::Data {
                seq: 7,
                payload: vec![1, 2, 3],
            },
            Packet::Data {
                seq: 0,
                payload: vec![],
            },
            Packet::Ack { upto: 99 },
        ] {
            assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
        }
        assert!(Packet::decode(&[]).is_err());
        assert!(Packet::decode(&[0, 1, 2]).is_err());
        assert!(Packet::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    /// Two endpoints, each with an inbox; pump both until quiescent.
    struct Pair {
        a: ReliableLink,
        b: ReliableLink,
        inbox_a: Arc<Inbox>,
        inbox_b: Arc<Inbox>,
    }

    impl Pair {
        fn new(faults_ab: Option<LinkFaults>, faults_ba: Option<LinkFaults>) -> Pair {
            let inbox_a = Inbox::new();
            let inbox_b = Inbox::new();
            let a = ReliableLink::new(
                Box::new(MemTx {
                    peer_inbox: Arc::clone(&inbox_b),
                    from: 0,
                }),
                faults_ab,
            );
            let b = ReliableLink::new(
                Box::new(MemTx {
                    peer_inbox: Arc::clone(&inbox_a),
                    from: 1,
                }),
                faults_ba,
            );
            Pair {
                a,
                b,
                inbox_a,
                inbox_b,
            }
        }

        /// One full exchange step; returns frames delivered at each side.
        fn step(&mut self) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
            let mut at_a = Vec::new();
            let mut at_b = Vec::new();
            for (_, bytes) in self.inbox_b.drain() {
                at_b.extend(self.b.on_packet(&bytes).expect("decode at b"));
            }
            for (_, bytes) in self.inbox_a.drain() {
                at_a.extend(self.a.on_packet(&bytes).expect("decode at a"));
            }
            self.a.pump().unwrap();
            self.b.pump().unwrap();
            (at_a, at_b)
        }
    }

    #[test]
    fn clean_link_delivers_in_order() {
        let mut pair = Pair::new(None, None);
        for i in 0..10u8 {
            pair.a.send(&[i]).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..5 {
            let (_, at_b) = pair.step();
            got.extend(at_b);
        }
        assert_eq!(got, (0..10u8).map(|i| vec![i]).collect::<Vec<_>>());
        assert!(pair.a.drained(), "acks must clear the unacked queue");
        assert_eq!(pair.a.retransmits, 0);
    }

    #[test]
    fn chaos_link_still_delivers_everything_in_order() {
        for seed in 0..8u64 {
            let plan = LinkFaultPlan::chaos(seed);
            let mut pair = Pair::new(
                Some(LinkFaults::new(&plan, 0, 1)),
                Some(LinkFaults::new(&plan, 1, 0)),
            );
            let n = 200u64;
            for i in 0..n {
                pair.a.send(&i.to_le_bytes()).unwrap();
                // Cross-traffic so acks themselves ride a faulty link.
                if i % 3 == 0 {
                    pair.b.send(&[0xAB]).unwrap();
                }
            }
            let mut got = Vec::new();
            for _ in 0..2000 {
                let (_, at_b) = pair.step();
                got.extend(at_b);
                if got.len() == n as usize && pair.a.drained() && pair.b.drained() {
                    break;
                }
            }
            let want: Vec<Vec<u8>> = (0..n).map(|i| i.to_le_bytes().to_vec()).collect();
            assert_eq!(got, want, "seed {seed}: loss or reordering leaked through");
            assert!(
                pair.a.drained() && pair.b.drained(),
                "seed {seed}: not drained"
            );
        }
    }

    #[test]
    fn duplicate_packets_are_discarded_and_reacked() {
        let mut pair = Pair::new(None, None);
        pair.a.send(b"x").unwrap();
        let pkts = pair.inbox_b.drain();
        assert_eq!(pkts.len(), 1);
        // Deliver the same data packet three times.
        for _ in 0..3 {
            let out = pair.b.on_packet(&pkts[0].1).unwrap();
            if pair.b.frames_delivered == 1 {
                assert!(out.len() <= 1);
            }
        }
        assert_eq!(pair.b.frames_delivered, 1, "duplicates must not re-deliver");
        pair.b.pump().unwrap();
        // The re-ack reaches a and clears its unacked queue.
        for (_, bytes) in pair.inbox_a.drain() {
            pair.a.on_packet(&bytes).unwrap();
        }
        assert!(pair.a.drained());
    }

    #[test]
    fn partition_swallows_everything_until_heal_then_retransmit_recovers() {
        let mut pair = Pair::new(None, None);
        pair.a.set_partitioned(true);
        assert!(pair.a.is_partitioned());
        for i in 0..5u8 {
            pair.a.send(&[i]).unwrap();
        }
        for _ in 0..(RETRANSMIT_EVERY as usize * 3) {
            let (_, at_b) = pair.step();
            assert!(at_b.is_empty(), "nothing may cross a partition");
        }
        assert!(!pair.a.drained(), "unacked frames survive the partition");
        pair.a.set_partitioned(false);
        let mut got = Vec::new();
        for _ in 0..(RETRANSMIT_EVERY as usize * 3) {
            let (_, at_b) = pair.step();
            got.extend(at_b);
            if got.len() == 5 && pair.a.drained() {
                break;
            }
        }
        assert_eq!(got, (0..5u8).map(|i| vec![i]).collect::<Vec<_>>());
        assert!(
            pair.a.drained(),
            "heal must resume seq/ack state, not reset"
        );
        assert!(pair.a.retransmits >= 1);
    }

    #[test]
    fn backoff_grows_to_the_cap_with_bounded_jitter() {
        let mut b = Backoff::standard(42);
        let mut prev = Duration::ZERO;
        for i in 0..12 {
            let d = b.next_delay();
            assert!(
                d <= Duration::from_millis(250),
                "attempt {i}: {d:?} above cap+jitter"
            );
            if i < 4 {
                assert!(d >= prev / 2, "roughly non-decreasing early on");
            }
            prev = d;
        }
        assert_eq!(b.attempts(), 12);
        // Same seed replays the same schedule; different seeds jitter apart.
        let s1: Vec<Duration> = (0..8).map(|_| Backoff::standard(7).next_delay()).collect();
        let mut b7 = Backoff::standard(7);
        let s2: Vec<Duration> = (0..8).map(|_| b7.next_delay()).collect();
        assert_eq!(s1[0], s2[0]);
        let mut b8 = Backoff::standard(8);
        let s3: Vec<Duration> = (0..8).map(|_| b8.next_delay()).collect();
        assert_ne!(s2, s3);
    }

    #[test]
    fn hello_rejects_bad_magic_and_version_mismatch() {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Good hello round-trips the shard id.
        let mut c = TcpStream::connect(addr).unwrap();
        write_hello(&mut c, 3).unwrap();
        let (mut s, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut s).unwrap(), 3);

        // Wrong protocol version: clear mismatch error naming both versions.
        let mut c = TcpStream::connect(addr).unwrap();
        let bogus_version = crate::proto::PROTOCOL_VERSION + 1;
        let mut buf = Vec::new();
        buf.extend_from_slice(&crate::proto::HELLO_MAGIC.to_le_bytes());
        buf.extend_from_slice(&bogus_version.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        c.write_all(&buf).unwrap();
        let (mut s, _) = listener.accept().unwrap();
        let err = read_hello(&mut s).unwrap_err().to_string();
        assert!(err.contains("protocol version mismatch"), "got: {err}");
        assert!(err.contains(&format!("v{bogus_version}")), "got: {err}");

        // Garbage preamble: rejected on the magic, not a decode error later.
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(&[0xDEu8; 12]).unwrap();
        let (mut s, _) = listener.accept().unwrap();
        let err = read_hello(&mut s).unwrap_err().to_string();
        assert!(err.contains("bad hello magic"), "got: {err}");
    }

    #[test]
    fn retransmission_recovers_a_silently_dropped_packet() {
        let mut pair = Pair::new(None, None);
        pair.a.send(b"lost").unwrap();
        pair.inbox_b.drain(); // the packet vanishes on the wire
        let mut got = Vec::new();
        for _ in 0..(RETRANSMIT_EVERY as usize + 4) {
            let (_, at_b) = pair.step();
            got.extend(at_b);
        }
        assert_eq!(got, vec![b"lost".to_vec()]);
        assert!(pair.a.retransmits >= 1);
        assert!(pair.a.drained());
    }
}
