//! Cluster launchers: loopback (threads over memory or TCP links), an
//! elastic-membership supervisor (heartbeat-discovered failures, partial
//! recovery, join/leave at GVT cuts, graceful degradation), the
//! deterministic stepped harness, and the single-shard entry point for
//! real multi-process runs.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use metrics::RunMetrics;
use pdes_core::{
    Checkpoint, EngineConfig, IngestGate, LinkFaultPlan, LinkFaults, LpId, LpMap, Model,
    SimThreadId,
};
use telemetry::EventKind;

use crate::link::{
    read_hello, spawn_tcp_reader, write_hello, Backoff, Inbox, MemTx, ReliableLink, TcpTx,
};
use crate::node::{
    CkptSlot, DistError, HeartbeatConfig, NodeConfig, NodeOutcome, ReshapeAction, ShardNode,
};

/// How loopback shards talk to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// In-process memory links (deterministic-friendly, TSan-friendly).
    Mem,
    /// Real TCP sockets on localhost.
    Tcp,
}

/// Configuration of a whole distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    pub shards: usize,
    pub transport: Transport,
    /// Per-directed-link fault plan (delay / drop / duplicate), seeded.
    pub link_faults: Option<LinkFaultPlan>,
    /// Scripted shard kills: `(shard, nth GVT publish observed)` — counted
    /// in protocol progress so the kill is deterministic across hosts.
    pub kills: Vec<(usize, u64)>,
    /// Scripted kills die *silently* (no cohort abort flag): the failure
    /// must be discovered by the heartbeat detector or a TCP hang-up.
    pub kill_silent: bool,
    /// Heartbeat failure detection (`None` = off).
    pub heartbeat: Option<HeartbeatConfig>,
    /// Scripted transient partitions: `(from, to, for_rounds)` — shard
    /// `from`'s outgoing link to `to` swallows every frame until `from` has
    /// run `for_rounds * gvt_interval_cycles` cycles, then heals and lets
    /// retransmission resume delivery.
    pub partitions: Vec<(usize, usize, u64)>,
    /// Admit one joining shard at the first checkpoint cut assembled at or
    /// after the `n`th GVT publish.
    pub join_at: Option<u64>,
    /// Drain shard `.0` out of the cluster at the first cut assembled at or
    /// after the `.1`th GVT publish.
    pub leave_at: Option<(usize, u64)>,
    /// Recovery attempts the supervisor may spend on kills.
    pub max_recoveries: u32,
    /// When recovery attempts are exhausted but a checkpoint cut exists,
    /// shrink the cluster around the dead shard(s) instead of failing the
    /// run (graceful degradation).
    pub degrade: bool,
    /// Checkpoint cut every this many GVT rounds (0 = never).
    pub ckpt_every_rounds: u64,
    /// Cycles between GVT round starts.
    pub gvt_interval_cycles: u64,
    /// Cycles between wave re-polls.
    pub wave_interval_cycles: u64,
    /// GVT-liveness watchdog per shard.
    pub watchdog: Option<Duration>,
    /// TCP mesh setup deadline.
    pub mesh_timeout: Duration,
    /// Live tracing / round-snapshot collection (off by default). Each
    /// shard collects locally and forwards to the coordinator at Finish.
    pub telemetry: telemetry::TelemetryConfig,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            shards: 2,
            transport: Transport::Mem,
            link_faults: None,
            kills: Vec::new(),
            kill_silent: false,
            heartbeat: None,
            partitions: Vec::new(),
            join_at: None,
            leave_at: None,
            max_recoveries: 0,
            degrade: false,
            ckpt_every_rounds: 0,
            gvt_interval_cycles: 32,
            wave_interval_cycles: 4,
            watchdog: Some(Duration::from_secs(10)),
            mesh_timeout: Duration::from_secs(10),
            telemetry: telemetry::TelemetryConfig::default(),
        }
    }
}

/// The assembled outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct DistResult {
    pub metrics: RunMetrics,
    /// Final per-LP state digests, ascending by LP.
    pub state_digests: Vec<(LpId, u64)>,
    /// XOR-fold of per-shard unprocessed-event digests.
    pub pending_digest: u64,
    /// Final published GVT (ticks).
    pub gvt: u64,
    /// Clamped GVT regressions (should be 0).
    pub regressions: u64,
    /// Kill recoveries performed (full restarts + partial restores).
    pub recoveries: u32,
    /// Recoveries that restored only the dead shard(s) from the latest cut
    /// while the survivors replayed their send logs in place.
    pub partial_recoveries: u32,
    /// Whether any recovery restored from an assembled checkpoint cut
    /// (as opposed to replaying from the start).
    pub used_checkpoint: bool,
    /// Shards in the membership when the run finished (join/leave/degrade
    /// change this from `DistConfig::shards`).
    pub shards_final: usize,
    /// Membership reshapes performed (joins + leaves + degradations).
    pub membership_epoch: u64,
    /// Merged telemetry across all shards (when tracing was enabled),
    /// mapped onto the coordinator's clock. Full-restart recoveries start a
    /// fresh collection; this is the final (successful) attempt's data.
    pub telemetry: Option<telemetry::TelemetryData>,
}

fn node_cfg(dcfg: &DistConfig, shard: usize) -> NodeConfig {
    NodeConfig {
        gvt_interval_cycles: dcfg.gvt_interval_cycles,
        wave_interval_cycles: dcfg.wave_interval_cycles,
        ckpt_every_rounds: dcfg.ckpt_every_rounds,
        watchdog: dcfg.watchdog,
        kill_at: dcfg
            .kills
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, at)| *at),
        kill_silent: dcfg.kill_silent,
        heartbeat: dcfg.heartbeat.clone(),
        partitions: dcfg
            .partitions
            .iter()
            .filter(|(from, _, _)| *from == shard)
            .map(|(_, to, rounds)| (*to, *rounds))
            .collect(),
        join_at: (shard == 0).then_some(dcfg.join_at).flatten(),
        leave_at: (shard == 0).then_some(dcfg.leave_at).flatten(),
        telemetry: dcfg.telemetry.clone(),
    }
}

fn link_faults_for(plan: &Option<LinkFaultPlan>, src: usize, dst: usize) -> Option<LinkFaults> {
    plan.as_ref()
        .filter(|p| p.is_active())
        .map(|p| LinkFaults::new(p, src, dst))
}

/// Build shard `i`'s links over shared in-memory inboxes.
fn mem_links(
    i: usize,
    inboxes: &[Arc<Inbox>],
    plan: &Option<LinkFaultPlan>,
) -> Vec<Option<ReliableLink>> {
    (0..inboxes.len())
        .map(|j| {
            (j != i).then(|| {
                ReliableLink::new(
                    Box::new(MemTx {
                        peer_inbox: Arc::clone(&inboxes[j]),
                        from: i,
                    }),
                    link_faults_for(plan, i, j),
                )
            })
        })
        .collect()
}

/// Full-mesh TCP handshake for shard `shard`: connect to every lower shard
/// (with the same capped-exponential-backoff policy the runtime uses for
/// reconnects), accept from every higher one, exchanging the raw `Hello`
/// version + shard-id preamble. Returns one stream per peer.
pub fn tcp_mesh(
    shard: usize,
    num_shards: usize,
    listener: TcpListener,
    connect_addrs: &[SocketAddr],
    timeout: Duration,
) -> Result<Vec<Option<TcpStream>>, DistError> {
    assert!(
        connect_addrs.len() >= shard,
        "need an address per lower shard"
    );
    let deadline = Instant::now() + timeout;
    let mut streams: Vec<Option<TcpStream>> = (0..num_shards).map(|_| None).collect();
    let timeout_err = |what: String| DistError::ConnectTimeout {
        shard,
        detail: what,
    };
    for (j, addr) in connect_addrs.iter().enumerate().take(shard) {
        let mut backoff = Backoff::standard(0x6D65_7368 ^ ((shard as u64) << 8) ^ j as u64);
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(timeout_err(format!(
                            "shard {j} at {addr} never accepted after {} attempts: {e}",
                            backoff.attempts()
                        )));
                    }
                    std::thread::sleep(backoff.next_delay());
                }
            }
        };
        stream.set_nodelay(true)?;
        let mut stream = stream;
        write_hello(&mut stream, shard)?;
        streams[j] = Some(stream);
    }
    listener.set_nonblocking(true)?;
    let mut expected = num_shards - shard - 1;
    let mut backoff = Backoff::standard(0x6163_6370 ^ shard as u64);
    while expected > 0 {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(Duration::from_secs(5)))?;
                stream.set_nonblocking(false)?;
                let mut stream = stream;
                let peer = read_hello(&mut stream)?;
                if peer <= shard || peer >= num_shards {
                    return Err(DistError::Protocol {
                        shard,
                        detail: format!("bogus Hello from shard {peer}"),
                    });
                }
                if streams[peer].replace(stream).is_some() {
                    return Err(DistError::Protocol {
                        shard,
                        detail: format!("shard {peer} connected twice"),
                    });
                }
                stream_clear_timeout(&mut streams, peer)?;
                expected -= 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(timeout_err(format!(
                        "{expected} higher shard(s) never connected"
                    )));
                }
                std::thread::sleep(backoff.next_delay());
            }
            Err(e) => return Err(DistError::Io(e)),
        }
    }
    Ok(streams)
}

fn stream_clear_timeout(streams: &mut [Option<TcpStream>], peer: usize) -> Result<(), DistError> {
    streams[peer]
        .as_ref()
        .expect("just inserted")
        .set_read_timeout(None)?;
    Ok(())
}

/// One loopback TCP connection between shards `lo < hi`, handshaked with
/// the same versioned `Hello` preamble as the real mesh. Returns
/// `(lo's stream, hi's stream)`.
fn tcp_pair(lo: usize, hi: usize) -> Result<(TcpStream, TcpStream), DistError> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut connector = TcpStream::connect(addr)?;
    let (mut acceptor, _) = listener.accept()?;
    connector.set_nodelay(true)?;
    acceptor.set_nodelay(true)?;
    write_hello(&mut connector, hi)?;
    let peer = read_hello(&mut acceptor)?;
    if peer != hi {
        return Err(DistError::Protocol {
            shard: lo,
            detail: format!("loopback pair announced shard {peer}, expected {hi}"),
        });
    }
    Ok((acceptor, connector))
}

/// Wrap one endpoint of a TCP connection into a reliable link, spawning
/// its reader thread into `inbox`.
fn tcp_link(
    me: usize,
    peer: usize,
    stream: TcpStream,
    inbox: &Arc<Inbox>,
    plan: &Option<LinkFaultPlan>,
) -> Result<ReliableLink, DistError> {
    let reader = stream.try_clone()?;
    spawn_tcp_reader(reader, peer, Arc::clone(inbox));
    Ok(ReliableLink::new(
        Box::new(TcpTx { stream }),
        link_faults_for(plan, me, peer),
    ))
}

/// Turn handshake streams into reliable links + reader threads feeding
/// `inbox`.
fn tcp_links(
    i: usize,
    streams: Vec<Option<TcpStream>>,
    inbox: &Arc<Inbox>,
    plan: &Option<LinkFaultPlan>,
) -> Result<Vec<Option<ReliableLink>>, DistError> {
    let mut links = Vec::with_capacity(streams.len());
    for (j, s) in streams.into_iter().enumerate() {
        match s {
            None => links.push(None),
            Some(stream) => links.push(Some(tcp_link(i, j, stream, inbox, plan)?)),
        }
    }
    Ok(links)
}

/// Assemble the coordinator's [`NodeOutcome`] into a [`DistResult`].
fn assemble_result(out: NodeOutcome, shards: usize, lps: usize, wall_secs: f64) -> DistResult {
    let telemetry = out.telemetry;
    let metrics = RunMetrics {
        system: "GG-PDES-Dist".to_string(),
        threads: shards,
        lps,
        wall_secs,
        committed: out.totals.committed,
        processed: out.totals.processed,
        rolled_back: out.totals.rolled_back,
        rollbacks: out.totals.rollbacks,
        antis_sent: out.totals.antis_sent,
        gvt_rounds: out.gvt_rounds,
        max_descheduled: out.max_parked as usize,
        commit_digest: out.totals.commit_digest,
        last_round: telemetry.as_ref().and_then(|d| d.last_round().cloned()),
        protocol: "optimistic".into(),
        ..Default::default()
    };
    DistResult {
        metrics,
        state_digests: out.state_digests,
        pending_digest: out.pending_digest,
        gvt: out.gvt,
        regressions: out.regressions,
        recoveries: 0,
        partial_recoveries: 0,
        used_checkpoint: false,
        shards_final: shards,
        membership_epoch: 0,
        telemetry,
    }
}

/// A built cluster: one node per shard plus the shared inboxes (needed
/// again at partial-recovery time to rebuild a dead shard's links).
type Cluster<M> = (Vec<ShardNode<M>>, Vec<Arc<Inbox>>);

/// Per-shard ingest gates, indexed by shard id. The gates outlive every
/// attempt (the supervisor holds the `Arc`s), so admissions, idempotency
/// state, and journals survive kills and reshapes.
pub type IngestGates<M> = Vec<Arc<IngestGate<<M as Model>::Payload>>>;

/// Build a whole loopback cluster supervisor-side: shared inboxes, the full
/// link mesh (memory or handshaked TCP pairs), and one [`ShardNode`] per
/// shard, each bootstrapped or restored from `restore`.
#[allow(clippy::too_many_arguments)]
fn build_cluster<M: Model>(
    model: &Arc<M>,
    ecfg: &EngineConfig,
    dcfg: &DistConfig,
    flat_map: &LpMap,
    slot: &CkptSlot<M>,
    abort: &Arc<AtomicBool>,
    restore: Option<&Checkpoint<M::State, M::Payload>>,
    stepped: bool,
    gates: Option<&IngestGates<M>>,
) -> Result<Cluster<M>, DistError> {
    let n = dcfg.shards;
    let inboxes: Vec<Arc<Inbox>> = (0..n).map(|_| Inbox::new()).collect();
    let mut link_rows: Vec<Vec<Option<ReliableLink>>> = match dcfg.transport {
        Transport::Mem => (0..n)
            .map(|i| mem_links(i, &inboxes, &dcfg.link_faults))
            .collect(),
        Transport::Tcp => {
            let mut rows: Vec<Vec<Option<ReliableLink>>> =
                (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
            for i in 0..n {
                for j in i + 1..n {
                    let (si, sj) = tcp_pair(i, j)?;
                    rows[i][j] = Some(tcp_link(i, j, si, &inboxes[i], &dcfg.link_faults)?);
                    rows[j][i] = Some(tcp_link(j, i, sj, &inboxes[j], &dcfg.link_faults)?);
                }
            }
            rows
        }
    };
    let mut nodes = Vec::with_capacity(n);
    for (i, links) in link_rows.drain(..).enumerate() {
        let mut ncfg = node_cfg(dcfg, i);
        if stepped {
            ncfg.watchdog = None; // wall clock has no meaning there
        }
        let mut node = ShardNode::new(
            Arc::clone(model),
            flat_map.clone(),
            i,
            n,
            ecfg,
            ncfg,
            links,
            Arc::clone(&inboxes[i]),
            (i == 0).then(|| Arc::clone(slot)),
            (!stepped).then(|| Arc::clone(abort)),
        );
        // Attach the gate before restore: a restored node replays the
        // gate's accepted-but-uncut suffix into its rebuilt engine.
        if let Some(g) = gates.and_then(|gs| gs.get(i)) {
            node.set_ingest(Arc::clone(g));
        }
        match restore {
            Some(ck) => node.restore(ck)?,
            None => node.bootstrap()?,
        }
        nodes.push(node);
    }
    Ok((nodes, inboxes))
}

/// Run every node to completion on its own thread. A failing node flips
/// the cohort abort flag — except a *silent* scripted kill, whose whole
/// point is that the survivors must discover it themselves (heartbeat
/// lease expiry or TCP hang-up).
fn run_attempt<M: Model>(
    nodes: &mut [ShardNode<M>],
    abort: &Arc<AtomicBool>,
    kill_silent: bool,
) -> Vec<Result<(), DistError>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = nodes
            .iter_mut()
            .map(|node| {
                let abort = Arc::clone(abort);
                s.spawn(move || {
                    let r = node.run();
                    if let Err(e) = &r {
                        let silent = kill_silent && matches!(e, DistError::Killed { .. });
                        if !silent {
                            abort.store(true, Ordering::Relaxed);
                        }
                    }
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(shard, h)| {
                h.join().unwrap_or_else(|_| {
                    // A panicking shard thread is reported like any other
                    // shard failure so the supervisor can recover it.
                    Err(DistError::Protocol {
                        shard,
                        detail: "shard thread panicked".to_string(),
                    })
                })
            })
            .collect()
    })
}

/// Per-old-thread relative load estimate from a checkpoint cut: committed
/// events per shard, `+1` so an idle shard still counts as alive.
fn load_from_cut<S, P>(ck: &Checkpoint<S, P>, map: &LpMap) -> Vec<u64> {
    let mut load = vec![1u64; map.num_threads as usize];
    for lp in &ck.lps {
        load[map.thread_of(lp.lp).index()] += lp.committed;
    }
    load
}

/// Restore only the dead shards from `ck` and stitch them back into the
/// live cluster: survivors keep their engines, GVT counters (minus the dead
/// peers' columns) and send logs; each dead shard gets a fresh node, fresh
/// links on both sides, the survivors replay their cut-crossing send logs
/// to it and purge every input the restored shard will re-send.
#[allow(clippy::too_many_arguments)]
fn partial_recover<M: Model>(
    model: &Arc<M>,
    ecfg: &EngineConfig,
    dcfg: &DistConfig,
    flat_map: &LpMap,
    nodes: &mut [ShardNode<M>],
    inboxes: &mut [Arc<Inbox>],
    dead: &[usize],
    ck: &Checkpoint<M::State, M::Payload>,
    abort: Option<&Arc<AtomicBool>>,
    stepped: bool,
    gates: Option<&IngestGates<M>>,
) -> Result<(), DistError> {
    let n = nodes.len();
    debug_assert!(
        !dead.contains(&0),
        "the coordinator cannot be restored partially"
    );
    let survivors: Vec<usize> = (0..n).filter(|i| !dead.contains(i)).collect();
    // 1. Sever the dead shards' transports and flush in-flight raw packets.
    //    Dropped survivor packets were never acked, so retransmission
    //    redelivers them; the dead peers' packets must die here.
    if dcfg.transport == Transport::Tcp {
        for &s in &survivors {
            for &d in dead {
                nodes[s].hangup_link(d);
            }
        }
        for &s in &survivors {
            for &d in dead {
                nodes[s].await_hangup(d, Duration::from_secs(2));
            }
        }
    }
    for &s in &survivors {
        nodes[s].drain_inbox_dropping();
    }
    // 2. Fence: any frame for a round the coordinator already abandoned is
    //    stale pre-failure traffic. The coordinator's published GVT is the
    //    authoritative recovery floor — a survivor that missed the final
    //    pre-kill publish still holds an older one.
    let min_round = nodes[0].upcoming_round();
    let floor = nodes[0].gvt();
    // 3. Fresh inboxes + links for the dead shards (both directions).
    for &d in dead {
        inboxes[d] = Inbox::new();
    }
    let mut dead_links: Vec<Vec<Option<ReliableLink>>> = dead
        .iter()
        .map(|_| (0..n).map(|_| None).collect())
        .collect();
    let slot_of = |d: usize| dead.iter().position(|&x| x == d).expect("dead shard");
    match dcfg.transport {
        Transport::Mem => {
            for &s in &survivors {
                for &d in dead {
                    nodes[s].replace_link(
                        d,
                        ReliableLink::new(
                            Box::new(MemTx {
                                peer_inbox: Arc::clone(&inboxes[d]),
                                from: s,
                            }),
                            link_faults_for(&dcfg.link_faults, s, d),
                        ),
                    );
                }
            }
            for &d in dead {
                dead_links[slot_of(d)] = mem_links(d, inboxes, &dcfg.link_faults);
            }
        }
        Transport::Tcp => {
            for a in 0..n {
                for b in a + 1..n {
                    if !dead.contains(&a) && !dead.contains(&b) {
                        continue;
                    }
                    let (sa, sb) = tcp_pair(a, b)?;
                    let la = tcp_link(a, b, sa, &inboxes[a], &dcfg.link_faults)?;
                    let lb = tcp_link(b, a, sb, &inboxes[b], &dcfg.link_faults)?;
                    if dead.contains(&a) {
                        dead_links[slot_of(a)][b] = Some(la);
                    } else {
                        nodes[a].replace_link(b, la);
                    }
                    if dead.contains(&b) {
                        dead_links[slot_of(b)][a] = Some(lb);
                    } else {
                        nodes[b].replace_link(a, lb);
                    }
                }
            }
        }
    }
    // 4. Fresh nodes for the dead shards, restored from the cut. They
    //    deterministically re-execute from `ck.gvt` up to where they died;
    //    everything they re-send below the recovery floor is a duplicate
    //    the survivors drop at the link.
    for &d in dead {
        let links = std::mem::take(&mut dead_links[slot_of(d)]);
        let mut ncfg = node_cfg(dcfg, d);
        if stepped {
            ncfg.watchdog = None;
        }
        let mut node = ShardNode::new(
            Arc::clone(model),
            flat_map.clone(),
            d,
            n,
            ecfg,
            ncfg,
            links,
            Arc::clone(&inboxes[d]),
            None,
            abort.map(Arc::clone),
        );
        // The surviving gate (held by the supervisor) re-attaches: its
        // accepted suffix replays in restore, and its admission floor is
        // fenced to the coordinator's published GVT — below it, the
        // restored shard must deterministically re-execute the pre-failure
        // history so survivors can drop its re-sends as duplicates.
        if let Some(g) = gates.and_then(|gs| gs.get(d)) {
            node.set_ingest(Arc::clone(g));
        }
        node.restore(ck)?;
        node.raise_ingest_floor(floor);
        node.trace_instant(EventKind::PartialRestore, ck.gvt.ticks());
        nodes[d] = node;
    }
    // 5. Survivors enter recovery: void the dead peers' GVT counters, fence
    //    stale rounds, replay their send logs from the cut forward (the
    //    restored shard lost those inputs) and purge every input taken from
    //    the dead shards in the window being re-executed.
    let mut dead_lps: Vec<LpId> = dead
        .iter()
        .flat_map(|&d| flat_map.lps_of(SimThreadId(d as u32)))
        .collect();
    dead_lps.sort_unstable_by_key(|lp| lp.0);
    for &s in &survivors {
        nodes[s].begin_peer_recovery(dead, min_round, floor);
        if let Some(a) = abort {
            nodes[s].set_abort(Some(Arc::clone(a)));
        }
        for &d in dead {
            nodes[s].replay_log_to(d, ck.gvt.ticks())?;
        }
        nodes[s].purge_dead_inputs(&dead_lps, ck.gvt.ticks())?;
    }
    Ok(())
}

/// Run the whole simulation as `dcfg.shards` loopback shards (one thread
/// each) under an elastic-membership supervisor:
///
/// - a killed or heartbeat-declared-dead shard is restored *partially*
///   from the latest assembled checkpoint cut when possible (survivors keep
///   running state and replay their send logs), falling back to a full
///   restore-all restart otherwise;
/// - scripted joins/leaves reshape the membership at a GVT cut: the run is
///   re-launched from the cut under a load-rebalanced LP map with one shard
///   more or fewer;
/// - with `degrade` set, exhausting `max_recoveries` shrinks the cluster
///   around the dead shard(s) instead of failing the run.
pub fn run_loopback<M: Model>(
    model: Arc<M>,
    ecfg: &EngineConfig,
    dcfg: &DistConfig,
) -> Result<DistResult, DistError> {
    run_loopback_ingest(model, ecfg, dcfg, None)
}

/// [`run_loopback`] with per-shard ingest gates attached (`gates[i]` goes
/// to shard `i`). The gates outlive kills, partial recoveries, and
/// membership reshapes: accepted-but-uncut events replay after every
/// restore, and admission floors follow the coordinator's published GVT.
/// After a reshape shrinks the cluster, gates beyond the new membership are
/// simply unattached (their clients see `Closed` once the run finishes).
pub fn run_loopback_ingest<M: Model>(
    model: Arc<M>,
    ecfg: &EngineConfig,
    dcfg: &DistConfig,
    gates: Option<IngestGates<M>>,
) -> Result<DistResult, DistError> {
    let mut dcfg = dcfg.clone();
    assert!(dcfg.shards >= 1, "need at least one shard");
    let num_lps = model.num_lps();
    let mut flat_map = LpMap::new(num_lps, dcfg.shards, ecfg.mapping);
    let slot: CkptSlot<M> = Arc::new(Mutex::new(None));
    let t0 = Instant::now();
    let mut recoveries = 0u32;
    let mut partial_recoveries = 0u32;
    let mut membership_epoch = 0u64;
    let mut used_checkpoint = false;
    // Membership instants to stamp onto the next generation's trace clock.
    let mut pending_instants: Vec<(EventKind, u64)> = Vec::new();
    'generations: loop {
        let n = dcfg.shards;
        let restore: Option<Checkpoint<M::State, M::Payload>> =
            slot.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if (recoveries > 0 || membership_epoch > 0) && restore.is_some() {
            used_checkpoint = true;
        }
        let mut abort = Arc::new(AtomicBool::new(false));
        let (mut nodes, mut inboxes) = build_cluster(
            &model,
            ecfg,
            &dcfg,
            &flat_map,
            &slot,
            &abort,
            restore.as_ref(),
            false,
            gates.as_ref(),
        )?;
        for (kind, arg) in pending_instants.drain(..) {
            nodes[0].trace_instant(kind, arg);
        }
        // Scripted partitions fire once, on the first generation's links.
        dcfg.partitions.clear();
        loop {
            let results = run_attempt(&mut nodes, &abort, dcfg.kill_silent);
            let mut dead: Vec<usize> = Vec::new();
            let mut reshape: Option<ReshapeAction> = None;
            let mut hard_err: Option<DistError> = None;
            let mut all_ok = true;
            for r in results {
                match r {
                    Ok(()) => {}
                    Err(e) => {
                        all_ok = false;
                        match e {
                            DistError::Killed { shard } | DistError::PeerDead { shard, .. } => {
                                if !dead.contains(&shard) {
                                    dead.push(shard);
                                }
                            }
                            DistError::Reshape { action } => reshape = Some(action),
                            // Collateral of a kill/reshape elsewhere.
                            DistError::Aborted { .. } => {}
                            e => {
                                if hard_err.is_none() {
                                    hard_err = Some(e);
                                }
                            }
                        }
                    }
                }
            }
            if all_ok {
                let out = nodes[0].take_outcome().ok_or(DistError::Protocol {
                    shard: 0,
                    detail: "coordinator finished without an outcome".to_string(),
                })?;
                let mut res = assemble_result(out, n, num_lps, t0.elapsed().as_secs_f64());
                res.recoveries = recoveries;
                res.partial_recoveries = partial_recoveries;
                res.used_checkpoint = used_checkpoint;
                res.shards_final = n;
                res.membership_epoch = membership_epoch;
                return Ok(res);
            }
            if !dead.is_empty() {
                dead.sort_unstable();
                recoveries += dead.len() as u32;
                // A fired kill does not repeat.
                dcfg.kills.retain(|(s, _)| !dead.contains(s));
                let ck: Option<Checkpoint<M::State, M::Payload>> =
                    slot.lock().unwrap_or_else(|e| e.into_inner()).clone();
                if recoveries > dcfg.max_recoveries {
                    if let Some(ck) = ck.as_ref().filter(|_| dcfg.degrade && !dead.contains(&0)) {
                        // Graceful degradation: absorb the dead shards'
                        // LPs into the survivors and restart from the cut
                        // with a smaller cluster.
                        let mut map = ck.map.clone();
                        for &d in dead.iter().rev() {
                            let load = load_from_cut(ck, &map);
                            map = map.rebalanced_without(SimThreadId(d as u32), &load);
                        }
                        flat_map = map;
                        dcfg.shards = n - dead.len();
                        membership_epoch += dead.len() as u64;
                        for &d in dead.iter().rev() {
                            for k in dcfg.kills.iter_mut() {
                                if k.0 > d {
                                    k.0 -= 1;
                                }
                            }
                            pending_instants.push((EventKind::ShardLeave, d as u64));
                        }
                        continue 'generations;
                    }
                    return Err(DistError::RecoveryExhausted {
                        attempts: recoveries,
                        last: format!("shard(s) {dead:?} dead"),
                    });
                }
                let partial_ok = dcfg.ckpt_every_rounds > 0
                    && ck.is_some()
                    && !dead.contains(&0)
                    && (0..n)
                        .filter(|i| !dead.contains(i))
                        .all(|i| nodes[i].is_running());
                if !partial_ok {
                    // Full restore-all restart (or replay from the start
                    // when no cut exists yet).
                    continue 'generations;
                }
                abort = Arc::new(AtomicBool::new(false));
                let Some(ck) = ck.as_ref() else {
                    return Err(DistError::Protocol {
                        shard: 0,
                        detail: "partial recovery chosen without a cut".to_string(),
                    });
                };
                partial_recover(
                    &model,
                    ecfg,
                    &dcfg,
                    &flat_map,
                    &mut nodes,
                    &mut inboxes,
                    &dead,
                    ck,
                    Some(&abort),
                    false,
                    gates.as_ref(),
                )?;
                partial_recoveries += 1;
                used_checkpoint = true;
                continue;
            }
            if let Some(action) = reshape {
                let ck: Checkpoint<M::State, M::Payload> = slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone()
                    .ok_or(DistError::Protocol {
                        shard: 0,
                        detail: "membership reshape without an assembled cut".to_string(),
                    })?;
                let load = load_from_cut(&ck, &ck.map);
                match action {
                    ReshapeAction::Join => {
                        flat_map = ck.map.rebalanced_with_joiner(&load);
                        dcfg.shards = n + 1;
                        dcfg.join_at = None;
                        pending_instants.push((EventKind::ShardJoin, n as u64));
                    }
                    ReshapeAction::Leave(s) => {
                        flat_map = ck.map.rebalanced_without(SimThreadId(s as u32), &load);
                        dcfg.shards = n - 1;
                        dcfg.leave_at = None;
                        // Shard ids above the leaver shift down by one.
                        dcfg.kills.retain(|(k, _)| *k != s);
                        for k in dcfg.kills.iter_mut() {
                            if k.0 > s {
                                k.0 -= 1;
                            }
                        }
                        pending_instants.push((EventKind::ShardLeave, s as u64));
                    }
                }
                membership_epoch += 1;
                continue 'generations;
            }
            return Err(hard_err.unwrap_or(DistError::Protocol {
                shard: 0,
                detail: "attempt failed with no classified error".to_string(),
            }));
        }
    }
}

/// One shard of a real multi-process run (the CLI's `--listen/--connect`
/// path). Shard `shard` connects to `connect` (the listen addresses of
/// shards `0..shard`, in order) and accepts the higher shards on `listen`.
/// Returns the assembled [`DistResult`] on the coordinator, `None` on
/// workers.
pub struct ProcessOpts {
    pub shards: usize,
    pub shard: usize,
    pub listen: String,
    pub connect: Vec<String>,
    pub dcfg: DistConfig,
}

pub fn run_shard_process<M: Model>(
    model: Arc<M>,
    ecfg: &EngineConfig,
    opts: &ProcessOpts,
) -> Result<Option<DistResult>, DistError> {
    run_shard_process_ingest(model, ecfg, opts, None)
}

/// [`run_shard_process`] with this shard's ingest gate attached: the
/// client-facing server (or a journal recovery) hands the gate in, the node
/// pumps it between GVT rounds and forwards non-owned submissions to their
/// owning shards.
pub fn run_shard_process_ingest<M: Model>(
    model: Arc<M>,
    ecfg: &EngineConfig,
    opts: &ProcessOpts,
    gate: Option<Arc<IngestGate<M::Payload>>>,
) -> Result<Option<DistResult>, DistError> {
    let n = opts.shards;
    assert!(opts.shard < n, "shard id out of range");
    assert_eq!(
        opts.connect.len(),
        opts.shard,
        "need exactly one --connect per lower shard"
    );
    let num_lps = model.num_lps();
    let flat_map = LpMap::new(num_lps, n, ecfg.mapping);
    let listener = TcpListener::bind(&opts.listen)?;
    let mut addrs = Vec::with_capacity(opts.connect.len());
    for a in &opts.connect {
        let resolved = a.to_socket_addrs()?.next().ok_or_else(|| {
            DistError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{a} resolves to no address"),
            ))
        })?;
        addrs.push(resolved);
    }
    let t0 = Instant::now();
    let streams = tcp_mesh(opts.shard, n, listener, &addrs, opts.dcfg.mesh_timeout)?;
    let inbox = Inbox::new();
    let links = tcp_links(opts.shard, streams, &inbox, &opts.dcfg.link_faults)?;
    let slot: CkptSlot<M> = Arc::new(Mutex::new(None));
    let mut node = ShardNode::new(
        model,
        flat_map,
        opts.shard,
        n,
        ecfg,
        node_cfg(&opts.dcfg, opts.shard),
        links,
        inbox,
        (opts.shard == 0).then(|| Arc::clone(&slot)),
        None,
    );
    if let Some(g) = gate {
        node.set_ingest(g);
    }
    node.bootstrap()?;
    node.run()?;
    Ok(node
        .take_outcome()
        .map(|out| assemble_result(out, n, num_lps, t0.elapsed().as_secs_f64())))
}

/// Deterministic single-threaded cluster over memory links: every sweep
/// steps each shard once, round-robin, and checks the GVT safety invariant
/// (`published GVT <= every engine's pending minimum`) after every step.
/// This is the harness the GVT and membership property tests drive; it can
/// also perform a [`SteppedCluster::partial_recover`] mid-run to exercise
/// the elastic-membership recovery path without threads or wall clocks.
pub struct SteppedCluster<M: Model> {
    model: Arc<M>,
    ecfg: EngineConfig,
    dcfg: DistConfig,
    flat_map: LpMap,
    nodes: Vec<ShardNode<M>>,
    inboxes: Vec<Arc<Inbox>>,
    slot: CkptSlot<M>,
    gates: Option<IngestGates<M>>,
    /// Per-shard history of published GVT values (monotonicity checks).
    pub gvt_history: Vec<Vec<u64>>,
}

impl<M: Model> SteppedCluster<M> {
    pub fn new(
        model: Arc<M>,
        ecfg: &EngineConfig,
        dcfg: &DistConfig,
    ) -> Result<SteppedCluster<M>, DistError> {
        Self::new_with_ingest(model, ecfg, dcfg, None)
    }

    /// [`Self::new`] with per-shard ingest gates attached: the test driver
    /// submits through `gates[i]` and shard `i` pumps admissions between
    /// its deterministic sweeps.
    pub fn new_with_ingest(
        model: Arc<M>,
        ecfg: &EngineConfig,
        dcfg: &DistConfig,
        gates: Option<IngestGates<M>>,
    ) -> Result<SteppedCluster<M>, DistError> {
        assert_eq!(
            dcfg.transport,
            Transport::Mem,
            "stepped clusters are memory-linked"
        );
        let n = dcfg.shards;
        let num_lps = model.num_lps();
        let flat_map = LpMap::new(num_lps, n, ecfg.mapping);
        let slot: CkptSlot<M> = Arc::new(Mutex::new(None));
        let abort = Arc::new(AtomicBool::new(false));
        let (nodes, inboxes) = build_cluster(
            &model,
            ecfg,
            dcfg,
            &flat_map,
            &slot,
            &abort,
            None,
            true,
            gates.as_ref(),
        )?;
        Ok(SteppedCluster {
            model,
            ecfg: ecfg.clone(),
            dcfg: dcfg.clone(),
            flat_map,
            gvt_history: vec![Vec::new(); nodes.len()],
            nodes,
            inboxes,
            slot,
            gates,
        })
    }

    /// Step every unfinished shard once. Returns `true` when all are done.
    pub fn sweep(&mut self) -> Result<bool, DistError> {
        let mut all_done = true;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if node.finished() {
                continue;
            }
            node.step()?;
            // Safety: the published GVT never exceeds the true minimum —
            // in particular never this engine's own pending minimum.
            let (gvt, lmin) = (node.gvt(), node.local_min_ticks());
            if gvt > lmin {
                return Err(DistError::Protocol {
                    shard: i,
                    detail: format!("GVT {gvt} exceeds shard pending minimum {lmin}"),
                });
            }
            match self.gvt_history[i].last() {
                Some(&prev) if prev > gvt => {
                    return Err(DistError::Protocol {
                        shard: i,
                        detail: format!("GVT regressed {prev} -> {gvt}"),
                    });
                }
                Some(&prev) if prev == gvt => {}
                _ => self.gvt_history[i].push(gvt),
            }
            if !node.finished() {
                all_done = false;
            }
        }
        Ok(all_done)
    }

    /// Kill the given (non-coordinator) shards right now and restore them
    /// partially from the latest assembled cut, exactly as the threaded
    /// supervisor would. Returns `false` — without touching the cluster —
    /// when partial recovery is not possible yet (no cut assembled, or a
    /// shard already left its running phase).
    pub fn partial_recover(&mut self, dead: &[usize]) -> Result<bool, DistError> {
        let ck = match self.latest_checkpoint() {
            Some(ck) => ck,
            None => return Ok(false),
        };
        if dead.is_empty() || dead.contains(&0) {
            return Ok(false);
        }
        let n = self.nodes.len();
        if dead.iter().any(|&d| d >= n) {
            return Ok(false);
        }
        if (0..n)
            .filter(|i| !dead.contains(i))
            .any(|i| !self.nodes[i].is_running())
        {
            return Ok(false);
        }
        let mut dead = dead.to_vec();
        dead.sort_unstable();
        dead.dedup();
        partial_recover(
            &self.model,
            &self.ecfg,
            &self.dcfg,
            &self.flat_map,
            &mut self.nodes,
            &mut self.inboxes,
            &dead,
            &ck,
            None,
            true,
            self.gates.as_ref(),
        )?;
        for &d in &dead {
            // The restored shard restarts its GVT view from the cut.
            self.gvt_history[d].clear();
        }
        Ok(true)
    }

    /// The coordinator's assembled outcome, once every shard finished.
    pub fn take_outcome(&mut self) -> Option<NodeOutcome> {
        self.nodes[0].take_outcome()
    }

    /// Sweep to completion (bounded) and return the coordinator's outcome.
    pub fn run_to_completion(&mut self, max_sweeps: u64) -> Result<NodeOutcome, DistError> {
        for _ in 0..max_sweeps {
            if self.sweep()? {
                let out = self.nodes[0].take_outcome().ok_or(DistError::Protocol {
                    shard: 0,
                    detail: "finished without a coordinator outcome".to_string(),
                })?;
                return Ok(out);
            }
        }
        Err(DistError::Stalled {
            shard: 0,
            detail: format!("not finished after {max_sweeps} sweeps"),
        })
    }

    /// The latest assembled checkpoint, if any round was armed.
    pub fn latest_checkpoint(&self) -> Option<Checkpoint<M::State, M::Payload>> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}
