//! Cluster launchers: loopback (threads over memory or TCP links), a
//! kill-and-recover supervisor, the deterministic stepped harness, and the
//! single-shard entry point for real multi-process runs.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use metrics::RunMetrics;
use pdes_core::{Checkpoint, EngineConfig, LinkFaultPlan, LinkFaults, LpId, LpMap, Model};

use crate::link::{read_hello, spawn_tcp_reader, write_hello, Inbox, MemTx, ReliableLink, TcpTx};
use crate::node::{CkptSlot, DistError, NodeConfig, NodeOutcome, ShardNode};

/// How loopback shards talk to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// In-process memory links (deterministic-friendly, TSan-friendly).
    Mem,
    /// Real TCP sockets on localhost.
    Tcp,
}

/// Configuration of a whole distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    pub shards: usize,
    pub transport: Transport,
    /// Per-directed-link fault plan (delay / drop / duplicate), seeded.
    pub link_faults: Option<LinkFaultPlan>,
    /// Scripted shard kills: `(shard, nth GVT publish observed)` — counted
    /// in protocol progress so the kill is deterministic across hosts.
    pub kills: Vec<(usize, u64)>,
    /// Recovery attempts the supervisor may spend on kills.
    pub max_recoveries: u32,
    /// Checkpoint cut every this many GVT rounds (0 = never).
    pub ckpt_every_rounds: u64,
    /// Cycles between GVT round starts.
    pub gvt_interval_cycles: u64,
    /// Cycles between wave re-polls.
    pub wave_interval_cycles: u64,
    /// GVT-liveness watchdog per shard.
    pub watchdog: Option<Duration>,
    /// TCP mesh setup deadline.
    pub mesh_timeout: Duration,
    /// Live tracing / round-snapshot collection (off by default). Each
    /// shard collects locally and forwards to the coordinator at Finish.
    pub telemetry: telemetry::TelemetryConfig,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            shards: 2,
            transport: Transport::Mem,
            link_faults: None,
            kills: Vec::new(),
            max_recoveries: 0,
            ckpt_every_rounds: 0,
            gvt_interval_cycles: 32,
            wave_interval_cycles: 4,
            watchdog: Some(Duration::from_secs(10)),
            mesh_timeout: Duration::from_secs(10),
            telemetry: telemetry::TelemetryConfig::default(),
        }
    }
}

/// The assembled outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct DistResult {
    pub metrics: RunMetrics,
    /// Final per-LP state digests, ascending by LP.
    pub state_digests: Vec<(LpId, u64)>,
    /// XOR-fold of per-shard unprocessed-event digests.
    pub pending_digest: u64,
    /// Final published GVT (ticks).
    pub gvt: u64,
    /// Clamped GVT regressions (should be 0).
    pub regressions: u64,
    /// Kill recoveries performed.
    pub recoveries: u32,
    /// Whether the last recovery restored from an assembled checkpoint cut
    /// (as opposed to replaying from the start).
    pub used_checkpoint: bool,
    /// Merged telemetry across all shards (when tracing was enabled),
    /// mapped onto the coordinator's clock. Recovery attempts start a
    /// fresh collection; this is the final (successful) attempt's data.
    pub telemetry: Option<telemetry::TelemetryData>,
}

fn node_cfg(dcfg: &DistConfig, shard: usize) -> NodeConfig {
    NodeConfig {
        gvt_interval_cycles: dcfg.gvt_interval_cycles,
        wave_interval_cycles: dcfg.wave_interval_cycles,
        ckpt_every_rounds: dcfg.ckpt_every_rounds,
        watchdog: dcfg.watchdog,
        kill_at: dcfg
            .kills
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, at)| *at),
        telemetry: dcfg.telemetry.clone(),
    }
}

fn link_faults_for(plan: &Option<LinkFaultPlan>, src: usize, dst: usize) -> Option<LinkFaults> {
    plan.as_ref()
        .filter(|p| p.is_active())
        .map(|p| LinkFaults::new(p, src, dst))
}

/// Build shard `i`'s links over shared in-memory inboxes.
fn mem_links(
    i: usize,
    inboxes: &[Arc<Inbox>],
    plan: &Option<LinkFaultPlan>,
) -> Vec<Option<ReliableLink>> {
    (0..inboxes.len())
        .map(|j| {
            (j != i).then(|| {
                ReliableLink::new(
                    Box::new(MemTx {
                        peer_inbox: Arc::clone(&inboxes[j]),
                        from: i,
                    }),
                    link_faults_for(plan, i, j),
                )
            })
        })
        .collect()
}

/// Full-mesh TCP handshake for shard `shard`: connect to every lower shard
/// (retrying until `timeout`), accept from every higher one, exchanging the
/// raw `Hello` shard-id preamble. Returns one stream per peer.
pub fn tcp_mesh(
    shard: usize,
    num_shards: usize,
    listener: TcpListener,
    connect_addrs: &[SocketAddr],
    timeout: Duration,
) -> Result<Vec<Option<TcpStream>>, DistError> {
    assert!(
        connect_addrs.len() >= shard,
        "need an address per lower shard"
    );
    let deadline = Instant::now() + timeout;
    let mut streams: Vec<Option<TcpStream>> = (0..num_shards).map(|_| None).collect();
    let timeout_err = |what: String| DistError::ConnectTimeout {
        shard,
        detail: what,
    };
    for (j, addr) in connect_addrs.iter().enumerate().take(shard) {
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(timeout_err(format!(
                            "shard {j} at {addr} never accepted: {e}"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        };
        stream.set_nodelay(true)?;
        let mut stream = stream;
        write_hello(&mut stream, shard)?;
        streams[j] = Some(stream);
    }
    listener.set_nonblocking(true)?;
    let mut expected = num_shards - shard - 1;
    while expected > 0 {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(Duration::from_secs(5)))?;
                stream.set_nonblocking(false)?;
                let mut stream = stream;
                let peer = read_hello(&mut stream)?;
                if peer <= shard || peer >= num_shards {
                    return Err(DistError::Protocol {
                        shard,
                        detail: format!("bogus Hello from shard {peer}"),
                    });
                }
                if streams[peer].replace(stream).is_some() {
                    return Err(DistError::Protocol {
                        shard,
                        detail: format!("shard {peer} connected twice"),
                    });
                }
                stream_clear_timeout(&mut streams, peer)?;
                expected -= 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(timeout_err(format!(
                        "{expected} higher shard(s) never connected"
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(DistError::Io(e)),
        }
    }
    Ok(streams)
}

fn stream_clear_timeout(streams: &mut [Option<TcpStream>], peer: usize) -> Result<(), DistError> {
    streams[peer]
        .as_ref()
        .expect("just inserted")
        .set_read_timeout(None)?;
    Ok(())
}

/// Turn handshake streams into reliable links + reader threads feeding
/// `inbox`.
fn tcp_links(
    i: usize,
    streams: Vec<Option<TcpStream>>,
    inbox: &Arc<Inbox>,
    plan: &Option<LinkFaultPlan>,
) -> Result<Vec<Option<ReliableLink>>, DistError> {
    let mut links = Vec::with_capacity(streams.len());
    for (j, s) in streams.into_iter().enumerate() {
        match s {
            None => links.push(None),
            Some(stream) => {
                let reader = stream.try_clone()?;
                spawn_tcp_reader(reader, j, Arc::clone(inbox));
                links.push(Some(ReliableLink::new(
                    Box::new(TcpTx { stream }),
                    link_faults_for(plan, i, j),
                )));
            }
        }
    }
    Ok(links)
}

/// Assemble the coordinator's [`NodeOutcome`] into a [`DistResult`].
fn assemble_result(out: NodeOutcome, shards: usize, lps: usize, wall_secs: f64) -> DistResult {
    let telemetry = out.telemetry;
    let metrics = RunMetrics {
        system: "GG-PDES-Dist".to_string(),
        threads: shards,
        lps,
        wall_secs,
        committed: out.totals.committed,
        processed: out.totals.processed,
        rolled_back: out.totals.rolled_back,
        rollbacks: out.totals.rollbacks,
        antis_sent: out.totals.antis_sent,
        gvt_rounds: out.gvt_rounds,
        max_descheduled: out.max_parked as usize,
        commit_digest: out.totals.commit_digest,
        last_round: telemetry.as_ref().and_then(|d| d.last_round().cloned()),
        ..Default::default()
    };
    DistResult {
        metrics,
        state_digests: out.state_digests,
        pending_digest: out.pending_digest,
        gvt: out.gvt,
        regressions: out.regressions,
        recoveries: 0,
        used_checkpoint: false,
        telemetry,
    }
}

/// Run the whole simulation as `dcfg.shards` loopback shards (one thread
/// each) and supervise scripted kills: a killed cohort is torn down and
/// every shard is restored from the latest assembled checkpoint cut (or
/// replayed from the start if none exists yet).
pub fn run_loopback<M: Model>(
    model: Arc<M>,
    ecfg: &EngineConfig,
    dcfg: &DistConfig,
) -> Result<DistResult, DistError> {
    let n = dcfg.shards;
    assert!(n >= 1, "need at least one shard");
    let num_lps = model.num_lps();
    let flat_map = LpMap::new(num_lps, n, ecfg.mapping);
    let slot: CkptSlot<M> = Arc::new(Mutex::new(None));
    let t0 = Instant::now();
    let mut dcfg = dcfg.clone();
    let mut recoveries = 0u32;
    let mut used_checkpoint = false;
    loop {
        let abort = Arc::new(AtomicBool::new(false));
        let restore: Option<Checkpoint<M::State, M::Payload>> =
            slot.lock().expect("ckpt slot poisoned").clone();
        if recoveries > 0 && restore.is_some() {
            used_checkpoint = true;
        }
        // For the memory transport every inbox is shared up-front; TCP
        // shards bind their listeners here and handshake inside their
        // threads.
        let inboxes: Vec<Arc<Inbox>> = (0..n).map(|_| Inbox::new()).collect();
        let mut listeners: Vec<Option<TcpListener>> = Vec::new();
        let mut addrs: Vec<SocketAddr> = Vec::new();
        if dcfg.transport == Transport::Tcp {
            for _ in 0..n {
                let l = TcpListener::bind("127.0.0.1:0")?;
                addrs.push(l.local_addr()?);
                listeners.push(Some(l));
            }
        }
        let results: Vec<(Result<(), DistError>, Option<NodeOutcome>)> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for i in 0..n {
                let model = Arc::clone(&model);
                let flat_map = flat_map.clone();
                let abort = Arc::clone(&abort);
                let slot = Arc::clone(&slot);
                let restore = restore.clone();
                let dcfg = &dcfg;
                let inboxes = &inboxes;
                let addrs = &addrs;
                let listener = listeners.get_mut(i).and_then(|l| l.take());
                handles.push(s.spawn(move || {
                    let build = || -> Result<ShardNode<M>, DistError> {
                        let (inbox, links) = match dcfg.transport {
                            Transport::Mem => (
                                Arc::clone(&inboxes[i]),
                                mem_links(i, inboxes, &dcfg.link_faults),
                            ),
                            Transport::Tcp => {
                                let streams = tcp_mesh(
                                    i,
                                    n,
                                    listener.expect("listener bound"),
                                    addrs,
                                    dcfg.mesh_timeout,
                                )?;
                                let inbox = Inbox::new();
                                let links = tcp_links(i, streams, &inbox, &dcfg.link_faults)?;
                                (inbox, links)
                            }
                        };
                        let mut node = ShardNode::new(
                            model,
                            flat_map,
                            i,
                            n,
                            ecfg,
                            node_cfg(dcfg, i),
                            links,
                            inbox,
                            (i == 0).then(|| Arc::clone(&slot)),
                            Some(Arc::clone(&abort)),
                        );
                        match &restore {
                            Some(ck) => node.restore(ck),
                            None => node.bootstrap()?,
                        }
                        Ok(node)
                    };
                    match build() {
                        Ok(mut node) => {
                            let r = node.run();
                            if r.is_err() {
                                abort.store(true, Ordering::Relaxed);
                            }
                            (r, node.take_outcome())
                        }
                        Err(e) => {
                            abort.store(true, Ordering::Relaxed);
                            (Err(e), None)
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        let mut killed: Vec<usize> = Vec::new();
        let mut outcome: Option<NodeOutcome> = None;
        let mut hard_err: Option<DistError> = None;
        for (r, out) in results {
            match r {
                Ok(()) => {
                    if let Some(o) = out {
                        outcome = Some(o);
                    }
                }
                Err(DistError::Killed { shard }) => killed.push(shard),
                // Collateral of a kill elsewhere in the cohort.
                Err(DistError::Aborted { .. }) if hard_err.is_none() => {}
                Err(e) if hard_err.is_none() => hard_err = Some(e),
                Err(_) => {}
            }
        }
        if killed.is_empty() {
            if let Some(e) = hard_err {
                return Err(e);
            }
            let out = outcome.ok_or(DistError::Protocol {
                shard: 0,
                detail: "coordinator finished without an outcome".to_string(),
            })?;
            let mut res = assemble_result(out, n, num_lps, t0.elapsed().as_secs_f64());
            res.recoveries = recoveries;
            res.used_checkpoint = used_checkpoint;
            return Ok(res);
        }
        recoveries += killed.len() as u32;
        if recoveries > dcfg.max_recoveries {
            return Err(DistError::RecoveryExhausted {
                attempts: recoveries,
                last: format!("shard(s) {killed:?} killed"),
            });
        }
        // A fired kill does not repeat.
        dcfg.kills.retain(|(s, _)| !killed.contains(s));
    }
}

/// One shard of a real multi-process run (the CLI's `--listen/--connect`
/// path). Shard `shard` connects to `connect` (the listen addresses of
/// shards `0..shard`, in order) and accepts the higher shards on `listen`.
/// Returns the assembled [`DistResult`] on the coordinator, `None` on
/// workers.
pub struct ProcessOpts {
    pub shards: usize,
    pub shard: usize,
    pub listen: String,
    pub connect: Vec<String>,
    pub dcfg: DistConfig,
}

pub fn run_shard_process<M: Model>(
    model: Arc<M>,
    ecfg: &EngineConfig,
    opts: &ProcessOpts,
) -> Result<Option<DistResult>, DistError> {
    let n = opts.shards;
    assert!(opts.shard < n, "shard id out of range");
    assert_eq!(
        opts.connect.len(),
        opts.shard,
        "need exactly one --connect per lower shard"
    );
    let num_lps = model.num_lps();
    let flat_map = LpMap::new(num_lps, n, ecfg.mapping);
    let listener = TcpListener::bind(&opts.listen)?;
    let mut addrs = Vec::with_capacity(opts.connect.len());
    for a in &opts.connect {
        let resolved = a.to_socket_addrs()?.next().ok_or_else(|| {
            DistError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{a} resolves to no address"),
            ))
        })?;
        addrs.push(resolved);
    }
    let t0 = Instant::now();
    let streams = tcp_mesh(opts.shard, n, listener, &addrs, opts.dcfg.mesh_timeout)?;
    let inbox = Inbox::new();
    let links = tcp_links(opts.shard, streams, &inbox, &opts.dcfg.link_faults)?;
    let slot: CkptSlot<M> = Arc::new(Mutex::new(None));
    let mut node = ShardNode::new(
        model,
        flat_map,
        opts.shard,
        n,
        ecfg,
        node_cfg(&opts.dcfg, opts.shard),
        links,
        inbox,
        (opts.shard == 0).then(|| Arc::clone(&slot)),
        None,
    );
    node.bootstrap()?;
    node.run()?;
    Ok(node
        .take_outcome()
        .map(|out| assemble_result(out, n, num_lps, t0.elapsed().as_secs_f64())))
}

/// Deterministic single-threaded cluster over memory links: every sweep
/// steps each shard once, round-robin, and checks the GVT safety invariant
/// (`published GVT <= every engine's pending minimum`) after every step.
/// This is the harness the GVT property tests drive.
pub struct SteppedCluster<M: Model> {
    nodes: Vec<ShardNode<M>>,
    slot: CkptSlot<M>,
    /// Per-shard history of published GVT values (monotonicity checks).
    pub gvt_history: Vec<Vec<u64>>,
}

impl<M: Model> SteppedCluster<M> {
    pub fn new(
        model: Arc<M>,
        ecfg: &EngineConfig,
        dcfg: &DistConfig,
    ) -> Result<SteppedCluster<M>, DistError> {
        assert_eq!(
            dcfg.transport,
            Transport::Mem,
            "stepped clusters are memory-linked"
        );
        let n = dcfg.shards;
        let num_lps = model.num_lps();
        let flat_map = LpMap::new(num_lps, n, ecfg.mapping);
        let slot: CkptSlot<M> = Arc::new(Mutex::new(None));
        let inboxes: Vec<Arc<Inbox>> = (0..n).map(|_| Inbox::new()).collect();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let mut ncfg = node_cfg(dcfg, i);
            ncfg.watchdog = None; // wall clock has no meaning here
            let mut node = ShardNode::new(
                Arc::clone(&model),
                flat_map.clone(),
                i,
                n,
                ecfg,
                ncfg,
                mem_links(i, &inboxes, &dcfg.link_faults),
                Arc::clone(&inboxes[i]),
                (i == 0).then(|| Arc::clone(&slot)),
                None,
            );
            node.bootstrap()?;
            nodes.push(node);
        }
        Ok(SteppedCluster {
            gvt_history: vec![Vec::new(); nodes.len()],
            nodes,
            slot,
        })
    }

    /// Step every unfinished shard once. Returns `true` when all are done.
    pub fn sweep(&mut self) -> Result<bool, DistError> {
        let mut all_done = true;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if node.finished() {
                continue;
            }
            node.step()?;
            // Safety: the published GVT never exceeds the true minimum —
            // in particular never this engine's own pending minimum.
            let (gvt, lmin) = (node.gvt(), node.local_min_ticks());
            if gvt > lmin {
                return Err(DistError::Protocol {
                    shard: i,
                    detail: format!("GVT {gvt} exceeds shard pending minimum {lmin}"),
                });
            }
            match self.gvt_history[i].last() {
                Some(&prev) if prev > gvt => {
                    return Err(DistError::Protocol {
                        shard: i,
                        detail: format!("GVT regressed {prev} -> {gvt}"),
                    });
                }
                Some(&prev) if prev == gvt => {}
                _ => self.gvt_history[i].push(gvt),
            }
            if !node.finished() {
                all_done = false;
            }
        }
        Ok(all_done)
    }

    /// Sweep to completion (bounded) and return the coordinator's outcome.
    pub fn run_to_completion(&mut self, max_sweeps: u64) -> Result<NodeOutcome, DistError> {
        for _ in 0..max_sweeps {
            if self.sweep()? {
                let out = self.nodes[0].take_outcome().ok_or(DistError::Protocol {
                    shard: 0,
                    detail: "finished without a coordinator outcome".to_string(),
                })?;
                return Ok(out);
            }
        }
        Err(DistError::Stalled {
            shard: 0,
            detail: format!("not finished after {max_sweeps} sweeps"),
        })
    }

    /// The latest assembled checkpoint, if any round was armed.
    pub fn latest_checkpoint(&self) -> Option<Checkpoint<M::State, M::Payload>> {
        self.slot.lock().expect("ckpt slot poisoned").clone()
    }
}
