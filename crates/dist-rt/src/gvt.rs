//! Asynchronous Mattern-style distributed GVT.
//!
//! Each message crosses the mesh colored with its sender's **epoch** (the
//! `tag` on [`crate::proto::Frame::Sim`]). A GVT round `r` works like this:
//!
//! 1. The coordinator (shard 0) broadcasts `Start{round: r, wave: 0}`.
//! 2. On wave 0 each shard takes its *cut*: it bumps its epoch to `r + 1`,
//!    freezes its per-peer count of **white** messages sent (`tag <= r`),
//!    freezes its pending minimum, and resets its late-white fold. It keeps
//!    simulating — the cut is a bookkeeping instant, not a barrier.
//! 3. Every wave the shard reports: the frozen pending minimum and white
//!    send counts, the running fold of **late whites** (white messages that
//!    arrived after the cut — their timestamps are exactly the in-flight
//!    messages Mattern's invariant must cover), and its *fresh* per-peer
//!    white receive counts.
//! 4. The coordinator matches counters: when every `white_sent[i][j]`
//!    equals `white_recvd[j][i]`, no white message is still in flight, and
//!    `GVT = min over shards of min(pending_min, late_min)` is safe. Until
//!    they match it re-polls with `wave + 1` — the set of whites is frozen
//!    and finite, so the waves converge without pausing anyone.
//!
//! Red messages (`tag > r`) were sent by post-cut processing, which is
//! rooted in events that were pending (or late-white) at the cut — their
//! timestamps are bounded below by the reported minima, the classic
//! Mattern argument, which Time Warp preserves because rollbacks only
//! reinsert events at or above the triggering message's timestamp, and
//! anti-messages travel (and are counted) like any other message.

use std::collections::BTreeMap;

/// Per-shard GVT bookkeeping: epoch coloring and white counters.
#[derive(Debug)]
pub struct GvtTracker {
    /// This shard's current epoch; outgoing messages are tagged with it.
    pub epoch: u64,
    /// Per peer: tag → messages sent with that tag.
    sent_by_tag: Vec<BTreeMap<u64, u64>>,
    /// Per peer: tag → messages received with that tag.
    recvd_by_tag: Vec<BTreeMap<u64, u64>>,
    /// Frozen at the wave-0 cut: white messages sent to each peer.
    white_sent_at_cut: Vec<u64>,
    /// Frozen at the wave-0 cut: this engine's pending minimum (ticks).
    pending_min_at_cut: u64,
    /// Fold of receive times of whites that arrived after the cut (ticks).
    late_min: u64,
    /// The round the current cut belongs to.
    cut_round: u64,
}

impl GvtTracker {
    pub fn new(num_shards: usize) -> GvtTracker {
        GvtTracker {
            epoch: 0,
            sent_by_tag: vec![BTreeMap::new(); num_shards],
            recvd_by_tag: vec![BTreeMap::new(); num_shards],
            white_sent_at_cut: vec![0; num_shards],
            pending_min_at_cut: u64::MAX,
            late_min: u64::MAX,
            cut_round: 0,
        }
    }

    /// Record one outgoing message to `peer`; returns the tag to color it
    /// with (the current epoch).
    pub fn note_sent(&mut self, peer: usize) -> u64 {
        let tag = self.epoch;
        *self.sent_by_tag[peer].entry(tag).or_insert(0) += 1;
        tag
    }

    /// Record one incoming message from `peer`. A white message arriving
    /// after this round's cut (`tag < epoch`) is a *late white*: fold its
    /// receive time into the round's minimum.
    pub fn note_recvd(&mut self, peer: usize, tag: u64, recv_ticks: u64) {
        *self.recvd_by_tag[peer].entry(tag).or_insert(0) += 1;
        if tag < self.epoch {
            self.late_min = self.late_min.min(recv_ticks);
        }
    }

    /// Take the wave-0 cut for `round`: advance the epoch, freeze white
    /// send counts and the pending minimum, reset the late fold.
    pub fn take_cut(&mut self, round: u64, pending_min_ticks: u64) {
        self.epoch = round + 1;
        for (peer, by_tag) in self.sent_by_tag.iter().enumerate() {
            self.white_sent_at_cut[peer] = by_tag.range(..=round).map(|(_, n)| n).sum();
        }
        self.pending_min_at_cut = pending_min_ticks;
        self.late_min = u64::MAX;
        self.cut_round = round;
        // Tags two rounds back can never matter again: every white of an
        // older round was provably delivered when that round closed.
        if round >= 2 {
            let horizon = round - 2;
            for m in self.sent_by_tag.iter_mut().chain(&mut self.recvd_by_tag) {
                let tail = m.split_off(&horizon);
                let folded: u64 = m.values().sum();
                *m = tail;
                if folded > 0 {
                    *m.entry(horizon).or_insert(0) += folded;
                }
            }
        }
    }

    /// Forget every counter shared with `peer` (partial recovery). The
    /// peer was rebuilt from a checkpoint with a fresh tracker, so all
    /// accounting with its old incarnation is void — both sides restart
    /// that pair from zero while every other pair keeps its consistent
    /// history (survivor↔survivor counters stay valid because unacked
    /// frames are retransmitted and counted exactly once on delivery).
    pub fn reset_peer(&mut self, peer: usize) {
        self.sent_by_tag[peer].clear();
        self.recvd_by_tag[peer].clear();
        self.white_sent_at_cut[peer] = 0;
    }

    /// This shard's report for the current round at any wave: the frozen
    /// pending minimum, the running late fold, frozen white sends, and
    /// fresh white receive counts.
    pub fn report(&self) -> (u64, u64, Vec<u64>, Vec<u64>) {
        let round = self.cut_round;
        let white_recvd: Vec<u64> = self
            .recvd_by_tag
            .iter()
            .map(|by_tag| by_tag.range(..=round).map(|(_, n)| n).sum())
            .collect();
        (
            self.pending_min_at_cut,
            self.late_min,
            self.white_sent_at_cut.clone(),
            white_recvd,
        )
    }
}

/// One shard's latest report within a round.
#[derive(Debug, Clone)]
pub struct ShardReport {
    pub wave: u64,
    pub pending_min: u64,
    pub late_min: u64,
    pub white_sent: Vec<u64>,
    pub white_recvd: Vec<u64>,
}

/// What the coordinator decides after absorbing a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundClosure {
    /// Not every shard has reported the current wave yet.
    Pending,
    /// All reported but counters disagree: re-poll with this wave number.
    NextWave(u64),
    /// Counters matched: publish this GVT (ticks).
    Publish { gvt: u64 },
}

/// The coordinator side (lives on shard 0): collects reports, matches the
/// white counters, and derives the round's GVT.
#[derive(Debug)]
pub struct Coordinator {
    n: usize,
    /// Round currently in flight, if any.
    pub round: Option<u64>,
    /// Current wave of the in-flight round.
    pub wave: u64,
    /// Whether the in-flight round takes a checkpoint cut on publish.
    pub armed: bool,
    reports: Vec<Option<ShardReport>>,
    /// Last published GVT (ticks) — the monotonic floor.
    pub gvt: u64,
    /// Completed rounds.
    pub rounds_done: u64,
    /// Times the raw minimum came in below the published floor (clamped).
    pub regressions: u64,
    /// Recovery mode: a partially restored shard is re-executing below the
    /// published floor, so sub-floor minima are *expected* — they clamp
    /// without counting as regressions, rounds publish `recovering`, and
    /// the mode ends the first time the raw minimum reaches the floor
    /// again (the restored shard has caught up; nothing in flight is below
    /// the floor any more).
    pub recovering: bool,
    next_round: u64,
}

impl Coordinator {
    pub fn new(n: usize) -> Coordinator {
        Coordinator {
            n,
            round: None,
            wave: 0,
            armed: false,
            reports: vec![None; n],
            gvt: 0,
            rounds_done: 0,
            regressions: 0,
            recovering: false,
            next_round: 0,
        }
    }

    /// Enter recovery mode after a partial restore: abandon any in-flight
    /// round (its reports are gone with the dead shard's old incarnation)
    /// and expect sub-floor minima until the restored shard catches up.
    /// Round numbering and the published floor continue monotonically.
    pub fn begin_recovery(&mut self) {
        self.round = None;
        self.wave = 0;
        self.armed = false;
        self.reports = vec![None; self.n];
        self.recovering = true;
    }

    /// The number the next opened round will get — the supervisor fences
    /// recovery with it (`min_valid_round`): any frame carrying an older
    /// round number predates the recovery point and must be ignored.
    pub fn upcoming_round(&self) -> u64 {
        self.next_round
    }

    /// Open the next round; returns its number. Panics if one is in flight.
    pub fn start_round(&mut self, armed: bool) -> u64 {
        assert!(self.round.is_none(), "round already in flight");
        let r = self.next_round;
        self.next_round += 1;
        self.round = Some(r);
        self.wave = 0;
        self.armed = armed;
        self.reports = vec![None; self.n];
        r
    }

    /// Absorb one shard's report (stale rounds/waves are ignored) and try
    /// to close the round.
    pub fn on_report(&mut self, round: u64, shard: usize, rep: ShardReport) -> RoundClosure {
        if self.round != Some(round) || rep.wave != self.wave {
            return RoundClosure::Pending;
        }
        self.reports[shard] = Some(rep);
        self.try_close()
    }

    fn try_close(&mut self) -> RoundClosure {
        if self.reports.iter().any(|r| r.is_none()) {
            return RoundClosure::Pending;
        }
        let reps: Vec<&ShardReport> = self.reports.iter().map(|r| r.as_ref().unwrap()).collect();
        let matched = (0..self.n).all(|i| {
            (0..self.n).all(|j| i == j || reps[i].white_sent[j] == reps[j].white_recvd[i])
        });
        if !matched {
            self.wave += 1;
            for r in &mut self.reports {
                *r = None;
            }
            return RoundClosure::NextWave(self.wave);
        }
        let raw = reps
            .iter()
            .map(|r| r.pending_min.min(r.late_min))
            .min()
            .expect("n >= 1");
        if raw < self.gvt {
            if !self.recovering {
                self.regressions += 1;
            }
        } else {
            self.gvt = raw;
            self.recovering = false;
        }
        self.round = None;
        self.rounds_done += 1;
        RoundClosure::Publish { gvt: self.gvt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(wave: u64, pmin: u64, late: u64, sent: Vec<u64>, recvd: Vec<u64>) -> ShardReport {
        ShardReport {
            wave,
            pending_min: pmin,
            late_min: late,
            white_sent: sent,
            white_recvd: recvd,
        }
    }

    #[test]
    fn matched_counters_publish_the_min() {
        let mut c = Coordinator::new(2);
        let r = c.start_round(false);
        assert_eq!(
            c.on_report(r, 0, rep(0, 100, u64::MAX, vec![0, 3], vec![0, 2])),
            RoundClosure::Pending
        );
        let out = c.on_report(r, 1, rep(0, 80, 95, vec![2, 0], vec![3, 0]));
        assert_eq!(out, RoundClosure::Publish { gvt: 80 });
        assert_eq!(c.rounds_done, 1);
    }

    #[test]
    fn unmatched_counters_go_to_next_wave_then_converge() {
        let mut c = Coordinator::new(2);
        let r = c.start_round(false);
        // Shard 1 has only seen 2 of shard 0's 3 whites.
        c.on_report(r, 0, rep(0, 100, u64::MAX, vec![0, 3], vec![0, 0]));
        let out = c.on_report(r, 1, rep(0, 50, u64::MAX, vec![0, 0], vec![2, 0]));
        assert_eq!(out, RoundClosure::NextWave(1));
        // Wave 1: the straggler white arrived late with timestamp 40.
        c.on_report(r, 0, rep(1, 100, u64::MAX, vec![0, 3], vec![0, 0]));
        let out = c.on_report(r, 1, rep(1, 50, 40, vec![0, 0], vec![3, 0]));
        assert_eq!(out, RoundClosure::Publish { gvt: 40 });
    }

    #[test]
    fn published_gvt_never_regresses() {
        let mut c = Coordinator::new(1);
        let r = c.start_round(false);
        assert_eq!(
            c.on_report(r, 0, rep(0, 100, u64::MAX, vec![0], vec![0])),
            RoundClosure::Publish { gvt: 100 }
        );
        let r = c.start_round(false);
        assert_eq!(
            c.on_report(r, 0, rep(0, 90, u64::MAX, vec![0], vec![0])),
            RoundClosure::Publish { gvt: 100 },
            "floor must hold"
        );
        assert_eq!(c.regressions, 1);
    }

    #[test]
    fn recovery_mode_clamps_without_regressions_and_ends_at_the_floor() {
        let mut c = Coordinator::new(1);
        let r = c.start_round(false);
        c.on_report(r, 0, rep(0, 100, u64::MAX, vec![0], vec![0]));
        assert_eq!(c.gvt, 100);
        c.begin_recovery();
        assert!(c.recovering);
        assert!(c.round.is_none(), "in-flight round abandoned");
        // The restored shard reports sub-floor minima: clamped, published
        // GVT never regresses, nothing counted as a regression.
        for pmin in [40, 60, 95] {
            let r = c.start_round(false);
            assert_eq!(
                c.on_report(r, 0, rep(0, pmin, u64::MAX, vec![0], vec![0])),
                RoundClosure::Publish { gvt: 100 }
            );
            assert!(c.recovering, "still below the floor at {pmin}");
        }
        assert_eq!(c.regressions, 0);
        // Catching up to (or past) the floor ends recovery.
        let r = c.start_round(false);
        assert_eq!(
            c.on_report(r, 0, rep(0, 120, u64::MAX, vec![0], vec![0])),
            RoundClosure::Publish { gvt: 120 }
        );
        assert!(!c.recovering);
        // Sub-floor minima after recovery count as regressions again.
        let r = c.start_round(false);
        c.on_report(r, 0, rep(0, 10, u64::MAX, vec![0], vec![0]));
        assert_eq!(c.regressions, 1);
    }

    #[test]
    fn begin_recovery_keeps_round_numbering_monotone() {
        let mut c = Coordinator::new(2);
        let r0 = c.start_round(false);
        // Round in flight when the failure hits; only shard 0 reported.
        c.on_report(r0, 0, rep(0, 10, u64::MAX, vec![0, 0], vec![0, 0]));
        c.begin_recovery();
        let r1 = c.start_round(false);
        assert!(r1 > r0, "rounds never reuse a number");
        assert_eq!(c.wave, 0);
    }

    #[test]
    fn stale_wave_reports_are_ignored() {
        let mut c = Coordinator::new(2);
        let r = c.start_round(false);
        c.on_report(r, 0, rep(0, 10, u64::MAX, vec![0, 1], vec![0, 0]));
        c.on_report(r, 1, rep(0, 10, u64::MAX, vec![0, 0], vec![0, 0])); // → wave 1
        assert_eq!(c.wave, 1);
        // A late wave-0 report must not count toward wave 1.
        assert_eq!(
            c.on_report(r, 0, rep(0, 10, u64::MAX, vec![0, 1], vec![0, 0])),
            RoundClosure::Pending
        );
        assert!(c.reports.iter().all(|x| x.is_none()));
    }

    #[test]
    fn tracker_cut_freezes_whites_and_folds_late_arrivals() {
        let mut t = GvtTracker::new(2);
        assert_eq!(t.note_sent(1), 0);
        assert_eq!(t.note_sent(1), 0);
        t.note_recvd(1, 0, 500);
        // Cut for round 0: epoch 0 → 1; the two tag-0 sends are white.
        t.take_cut(0, 300);
        assert_eq!(t.epoch, 1);
        let (pmin, late, sent, recvd) = t.report();
        assert_eq!((pmin, late), (300, u64::MAX));
        assert_eq!(sent, vec![0, 2]);
        assert_eq!(recvd, vec![0, 1]);
        // A tag-0 message arriving now is a late white.
        t.note_recvd(1, 0, 250);
        let (_, late, _, recvd) = t.report();
        assert_eq!(late, 250);
        assert_eq!(recvd, vec![0, 2]);
        // Sends after the cut are red (tag 1): invisible to round 0.
        assert_eq!(t.note_sent(1), 1);
        let (_, _, sent, _) = t.report();
        assert_eq!(sent, vec![0, 2]);
    }

    #[test]
    fn tag_pruning_preserves_white_counts() {
        let mut t = GvtTracker::new(1);
        for round in 0..10 {
            for _ in 0..3 {
                t.note_sent(0);
                t.note_recvd(0, round, 1000);
            }
            t.take_cut(round, 1000);
        }
        let (_, _, sent, recvd) = t.report();
        assert_eq!(sent, vec![30]);
        assert_eq!(recvd, vec![30]);
    }
}
