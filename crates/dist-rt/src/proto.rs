//! The inter-shard frame protocol.
//!
//! Every frame travels through the reliable link layer ([`crate::link`]),
//! so the protocol can assume in-order, exactly-once delivery per directed
//! link. The only exception is [`Frame::Hello`], which is exchanged raw
//! during TCP mesh setup, *before* the reliable layer starts.

use pdes_core::{Event, IngestReply, IngestRequest, LpCheckpoint, LpId, Msg, ThreadStats};
use serde::{Deserialize, Serialize};

/// Wire protocol version, carried in the raw TCP hello preamble. Bump on
/// any change to [`Frame`]'s encoding so mismatched builds are rejected at
/// the handshake instead of failing to decode mid-run.
pub const PROTOCOL_VERSION: u32 = 4;

/// Magic prefix of the hello preamble (`"GPDS"` little-endian).
pub const HELLO_MAGIC: u32 = u32::from_le_bytes(*b"GPDS");

/// One protocol frame. `S`/`P` are the model's state and payload types.
///
/// GVT frames speak in **ticks** ([`pdes_core::VirtualTime::ticks`]) rather
/// than `f64` so the wire never rounds a timestamp.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Frame<S, P> {
    /// TCP handshake: the connecting side announces its shard id. Never
    /// sent through the reliable layer.
    Hello { shard: u64 },
    /// A simulation message (positive event or anti-message), colored with
    /// the sender's GVT epoch at send time: `tag <= r` means the message is
    /// *white* for round `r` (sent before the sender's round-`r` cut).
    Sim { tag: u64, msg: Msg<P> },
    /// A batch of simulation messages for one peer: the whole outbox drain
    /// of one engine step lands as a single frame (one serialize, one wire
    /// write) instead of one frame per event. Order within the batch is the
    /// send order — the receiver delivers in sequence, so the anti-vs-resend
    /// ordering contract holds exactly as it does for [`Frame::Sim`]. Each
    /// message keeps its own epoch `tag`: a batch can straddle a GVT cut,
    /// and the white/red accounting is per message, not per frame.
    SimBatch { msgs: Vec<(u64, Msg<P>)> },
    /// Coordinator → all: open round `round` (wave 0 cuts the epoch) or
    /// re-poll it (`wave > 0`). `armed` rounds take a checkpoint cut on
    /// publish.
    Start { round: u64, wave: u64, armed: bool },
    /// Shard → coordinator: the shard's round contribution. `pending_min`
    /// is frozen at the wave-0 cut; `late_min` folds every white message
    /// that arrived *after* the cut; `white_sent`/`white_recvd` are the
    /// per-peer white message counters (`white_sent` frozen at the cut,
    /// `white_recvd` fresh at every wave so late arrivals eventually match).
    Report {
        round: u64,
        wave: u64,
        shard: u64,
        pending_min: u64,
        late_min: u64,
        white_sent: Vec<u64>,
        white_recvd: Vec<u64>,
    },
    /// Coordinator → all: the round's GVT (ticks). `armed` requests a
    /// checkpoint cut at this GVT; `terminate` announces `gvt >= end_time`.
    /// `recovering` marks rounds published while a partially restored shard
    /// is still re-executing below the pre-failure GVT: receivers keep
    /// counting rounds but skip GVT adoption, fossil collection, parking,
    /// and cut arming until a non-recovering publish arrives.
    Publish {
        round: u64,
        gvt: u64,
        armed: bool,
        terminate: bool,
        recovering: bool,
    },
    /// Shard → coordinator: liveness beacon for the failure detector, sent
    /// on a wall-clock cadence independent of simulation progress.
    Heartbeat { shard: u64 },
    /// Coordinator → all: every link is provably drained (a full round
    /// matched after termination with nobody processing); finalize and
    /// report [`Frame::Done`].
    Finish,
    /// Shard → coordinator: this shard's contribution to the round's
    /// checkpoint cut (its LP snapshots plus cut-crossing events).
    CutPart {
        round: u64,
        shard: u64,
        lps: Vec<LpCheckpoint<S>>,
        events: Vec<Event<P>>,
    },
    /// Shard → coordinator: final statistics and digests after `finalize`.
    Done {
        shard: u64,
        stats: ThreadStats,
        digests: Vec<(LpId, u64)>,
        pending_digest: u64,
        parked: u64,
    },
    /// Shard → shard: an external-event submission forwarded to the shard
    /// owning its destination LP. `origin` is the forwarding shard; `key`
    /// tags the origin's local reply slot so the verdict finds its way back.
    Ingest {
        origin: u64,
        key: u64,
        req: IngestRequest<P>,
    },
    /// Owner → origin: the verdict for a forwarded submission.
    IngestReply { key: u64, reply: IngestReply },
    /// Shard → coordinator: the shard's collected telemetry (thread traces
    /// and per-round counter snapshots), sent right before [`Frame::Done`]
    /// so the in-order link guarantees it arrives first. `sent_at_ns` is
    /// the shard's monotonic clock at send time; the coordinator estimates
    /// the clock offset as `coordinator_now - sent_at_ns`.
    Telemetry {
        shard: u64,
        sent_at_ns: u64,
        data: telemetry::TelemetryData,
    },
}

impl<S, P> Frame<S, P> {
    /// Short human name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Sim { .. } => "Sim",
            Frame::SimBatch { .. } => "SimBatch",
            Frame::Start { .. } => "Start",
            Frame::Report { .. } => "Report",
            Frame::Publish { .. } => "Publish",
            Frame::Heartbeat { .. } => "Heartbeat",
            Frame::Finish => "Finish",
            Frame::CutPart { .. } => "CutPart",
            Frame::Done { .. } => "Done",
            Frame::Ingest { .. } => "Ingest",
            Frame::IngestReply { .. } => "IngestReply",
            Frame::Telemetry { .. } => "Telemetry",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{from_bytes, to_bytes};
    use pdes_core::{EventKey, EventUid, VirtualTime};

    type F = Frame<u32, u8>;

    fn key(t: u64, dst: u32) -> EventKey {
        EventKey {
            recv_time: VirtualTime::from_ticks(t),
            dst: LpId(dst),
            uid: EventUid::new(LpId(0), 7),
        }
    }

    #[test]
    fn frames_round_trip_through_wire() {
        let frames: Vec<F> = vec![
            Frame::Hello { shard: 3 },
            Frame::Sim {
                tag: 2,
                msg: Msg::Event(Event {
                    key: key(99, 1),
                    send_time: VirtualTime::from_ticks(42),
                    payload: 5,
                }),
            },
            Frame::Sim {
                tag: 0,
                msg: Msg::Anti(key(7, 0)),
            },
            Frame::SimBatch {
                msgs: vec![
                    (
                        1,
                        Msg::Event(Event {
                            key: key(50, 2),
                            send_time: VirtualTime::from_ticks(40),
                            payload: 9,
                        }),
                    ),
                    (2, Msg::Anti(key(60, 3))),
                ],
            },
            Frame::Start {
                round: 4,
                wave: 1,
                armed: true,
            },
            Frame::Report {
                round: 4,
                wave: 1,
                shard: 2,
                pending_min: 1000,
                late_min: u64::MAX,
                white_sent: vec![3, 0, 1],
                white_recvd: vec![0, 2, 2],
            },
            Frame::Publish {
                round: 4,
                gvt: 900,
                armed: false,
                terminate: false,
                recovering: true,
            },
            Frame::Heartbeat { shard: 2 },
            Frame::Finish,
            Frame::Done {
                shard: 1,
                stats: ThreadStats {
                    processed: 10,
                    committed: 9,
                    commit_digest: 0xDEAD,
                    ..Default::default()
                },
                digests: vec![(LpId(2), 11), (LpId(3), 12)],
                pending_digest: 0xBEEF,
                parked: 2,
            },
            Frame::Ingest {
                origin: 1,
                key: 42,
                req: IngestRequest {
                    source: 7,
                    id: 99,
                    at: VirtualTime::from_ticks(1234),
                    dst: LpId(3),
                    payload: 8,
                },
            },
            Frame::IngestReply {
                key: 42,
                reply: IngestReply::Rejected { floor_ticks: 900 },
            },
            Frame::Telemetry {
                shard: 2,
                sent_at_ns: 123_456_789,
                data: telemetry::TelemetryData {
                    threads: vec![telemetry::ThreadTrace {
                        tid: 0,
                        shard: 0,
                        emitted: 2,
                        dropped: 1,
                        records: vec![telemetry::TraceRecord {
                            kind: telemetry::EventKind::GvtEnd,
                            ts_ns: 77,
                            dur_ns: 5,
                            arg: 3,
                        }],
                    }],
                    rounds: vec![pdes_core::RoundCounters {
                        round: 3,
                        gvt_ticks: 900,
                        ts_ns: 80,
                        ..Default::default()
                    }],
                },
            },
        ];
        for f in frames {
            let bytes = to_bytes(&f);
            let back: F = from_bytes(&bytes).expect("decode");
            assert_eq!(format!("{f:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn cut_part_round_trips() {
        let f: F = Frame::CutPart {
            round: 9,
            shard: 0,
            lps: vec![],
            events: vec![Event {
                key: key(5, 2),
                send_time: VirtualTime::ZERO,
                payload: 1,
            }],
        };
        let back: F = from_bytes(&to_bytes(&f)).expect("decode");
        assert_eq!(format!("{f:?}"), format!("{back:?}"));
    }
}
