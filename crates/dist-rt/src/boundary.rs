//! Bridging a multi-threaded shard's [`thread_rt::RtShared`] to the
//! distributed mesh.
//!
//! `thread-rt` routes messages by **global** simulation-thread id once a
//! [`thread_rt::RemoteBoundary`] is installed: ids inside the shard's
//! window go to local queues, everything else lands here. [`LinkBoundary`]
//! translates the global thread id to the owning shard (via
//! [`ShardMap::shard_of_thread`]) and stages the message for the node's
//! link layer; [`RemoteBoundary::remote_min`] reports the cluster GVT so
//! the shard's local GVT computation can never run ahead of the mesh.
//!
//! The current [`crate::node::ShardNode`] drives a single engine per shard,
//! so this adapter is exercised by integration tests as the contract for a
//! future threads-inside-shards composition rather than wired into the node
//! loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pdes_core::{Msg, ShardMap, SimThreadId, VirtualTime};
use thread_rt::RemoteBoundary;

/// Stages out-of-shard messages, resolved to destination shards, and
/// mirrors the mesh GVT into the shard's local GVT computation.
pub struct LinkBoundary<P> {
    map: ShardMap,
    my_shard: usize,
    /// `(sender local thread, destination shard, message)` in send order.
    staged: Mutex<Vec<(usize, usize, Msg<P>)>>,
    /// Mesh GVT floor in ticks (`u64::MAX` = no remote constraint yet).
    remote_min_ticks: AtomicU64,
}

impl<P> LinkBoundary<P> {
    pub fn new(map: ShardMap, my_shard: usize) -> LinkBoundary<P> {
        LinkBoundary {
            map,
            my_shard,
            staged: Mutex::new(Vec::new()),
            remote_min_ticks: AtomicU64::new(u64::MAX),
        }
    }

    /// Drain everything staged since the last call, in send order.
    pub fn drain(&self) -> Vec<(usize, usize, Msg<P>)> {
        std::mem::take(&mut *self.staged.lock().expect("boundary poisoned"))
    }

    /// Publish the latest cluster GVT (ticks) into the shard.
    pub fn set_remote_min(&self, ticks: u64) {
        self.remote_min_ticks.store(ticks, Ordering::Release);
    }
}

impl<P: Send> RemoteBoundary<P> for LinkBoundary<P> {
    fn send_remote(&self, from_local: usize, dst: SimThreadId, msg: Msg<P>) {
        let shard = self.map.shard_of_thread(dst);
        debug_assert_ne!(
            shard, self.my_shard,
            "in-shard thread {dst} routed to the remote boundary"
        );
        self.staged
            .lock()
            .expect("boundary poisoned")
            .push((from_local, shard, msg));
    }

    fn remote_min(&self) -> VirtualTime {
        VirtualTime(self.remote_min_ticks.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::{EventKey, EventUid, LpId, MapKind};

    fn anti(t: u64, dst: u32) -> Msg<u8> {
        Msg::Anti(EventKey {
            recv_time: VirtualTime::from_ticks(t),
            dst: LpId(dst),
            uid: EventUid::new(LpId(0), 1),
        })
    }

    #[test]
    fn resolves_global_threads_to_shards() {
        // 8 LPs, 2 shards x 2 threads: global threads 0-1 are shard 0,
        // 2-3 are shard 1.
        let map = ShardMap::new(8, 2, 2, MapKind::Block);
        let b: LinkBoundary<u8> = LinkBoundary::new(map, 0);
        b.send_remote(1, SimThreadId(2), anti(10, 4));
        b.send_remote(0, SimThreadId(3), anti(20, 5));
        let staged = b.drain();
        assert_eq!(staged.len(), 2);
        assert_eq!((staged[0].0, staged[0].1), (1, 1));
        assert_eq!((staged[1].0, staged[1].1), (0, 1));
        assert!(b.drain().is_empty(), "drain must consume");
    }

    #[test]
    fn remote_min_defaults_open_and_tracks_updates() {
        let map = ShardMap::new(4, 2, 1, MapKind::Block);
        let b: LinkBoundary<u8> = LinkBoundary::new(map, 0);
        assert!(b.remote_min().is_infinite());
        b.set_remote_min(123);
        assert_eq!(b.remote_min().ticks(), 123);
    }
}
