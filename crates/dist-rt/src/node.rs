//! One shard of the distributed runtime.
//!
//! A [`ShardNode`] owns a [`ThreadEngine`] over its slice of LPs and a
//! [`ReliableLink`] per peer. Its [`ShardNode::step`] is one cycle of the
//! main loop — drain the inbox, drive GVT rounds (coordinator only),
//! process a batch, pump the links — and is public so the deterministic
//! [`crate::launcher::SteppedCluster`] can interleave shards round-robin.
//! [`ShardNode::run`] wraps `step` with inbox parking and a wall-clock
//! GVT-liveness watchdog for real (threaded / multi-process) runs.
//!
//! ## Demand-driven shard throttling
//!
//! On every GVT publish the node re-evaluates demand: a shard whose engine
//! holds no live pending work parks itself — it stops taking batches (and,
//! under [`ShardNode::run`], blocks on its inbox) until an inbound event
//! re-creates demand. This is the paper's demand-driven deactivation
//! applied at shard granularity: quiet inbound links and an empty pending
//! set mean the shard consumes no CPU until a remote event arrives.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pdes_core::{
    Checkpoint, EngineConfig, Event, EventKey, IngestError, IngestGate, IngestReply, IngestRequest,
    LpCheckpoint, LpId, LpMap, Model, Msg, Outbound, ReplySlot, ThreadEngine, ThreadStats,
    VirtualTime,
};
use telemetry::{EventKind, RoundTotals, Telemetry, TelemetryConfig, TelemetryData, Tracer};

use crate::gvt::{Coordinator, GvtTracker, RoundClosure, ShardReport};
use crate::link::{Inbox, ReliableLink};
use crate::proto::Frame;
use crate::wire::{self, WireError};

/// Why a distributed run stopped before producing a result.
#[derive(Debug)]
pub enum DistError {
    /// Transport failure (socket error, peer hangup mid-run).
    Io(std::io::Error),
    /// Frame/packet decoding failure.
    Wire(WireError),
    /// Protocol invariant violated — includes GVT overshoot (a delivered
    /// message below the published GVT), the one error that must never be
    /// silent.
    Protocol { shard: usize, detail: String },
    /// The GVT-liveness watchdog expired: no round completed in time.
    Stalled { shard: usize, detail: String },
    /// Scripted fault: this shard was killed at its programmed cycle.
    Killed { shard: usize },
    /// Another shard in the cohort failed; this one aborted cleanly.
    Aborted { shard: usize },
    /// Mesh setup gave up: a peer never accepted/connected in time.
    ConnectTimeout { shard: usize, detail: String },
    /// The recovery supervisor ran out of attempts.
    RecoveryExhausted { attempts: u32, last: String },
    /// The failure detector declared `shard` dead: either its heartbeat
    /// lease expired at the coordinator, or its TCP streams hung up mid-run.
    PeerDead { shard: usize, detail: String },
    /// Control-flow signal, not a failure: a scripted membership change is
    /// due at the freshly assembled checkpoint cut — the supervisor tears
    /// the cohort down and rebuilds it around the new [`ReshapeAction`].
    Reshape { action: ReshapeAction },
    /// The ingest journal failed (durability would be silently lost).
    Ingest(IngestError),
}

/// A membership change the coordinator requests at a GVT cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshapeAction {
    /// Admit one new shard, splitting load off the heaviest donors.
    Join,
    /// Drain this shard out: its LPs are absorbed by the survivors.
    Leave(usize),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "link i/o error: {e}"),
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::Protocol { shard, detail } => {
                write!(f, "protocol violation on shard {shard}: {detail}")
            }
            DistError::Stalled { shard, detail } => {
                write!(f, "shard {shard} stalled: {detail}")
            }
            DistError::Killed { shard } => write!(f, "shard {shard} killed (scripted fault)"),
            DistError::Aborted { shard } => write!(f, "shard {shard} aborted"),
            DistError::ConnectTimeout { shard, detail } => {
                write!(f, "shard {shard} mesh setup timed out: {detail}")
            }
            DistError::RecoveryExhausted { attempts, last } => {
                write!(
                    f,
                    "recovery exhausted after {attempts} attempts; last error: {last}"
                )
            }
            DistError::PeerDead { shard, detail } => {
                write!(f, "shard {shard} declared dead: {detail}")
            }
            DistError::Reshape { action } => write!(f, "membership reshape due: {action:?}"),
            DistError::Ingest(e) => write!(f, "ingest plane failed: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

impl From<IngestError> for DistError {
    fn from(e: IngestError) -> Self {
        DistError::Ingest(e)
    }
}

/// Lifecycle phase of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// Normal simulation: batches, GVT rounds, checkpoints.
    Running,
    /// `Publish{terminate}` seen: no more batches, but keep pumping and
    /// delivering until the coordinator proves the links drained.
    Draining,
    /// `Finish` seen, engine finalized, `Done` sent: flush remaining acks.
    Flushing,
    /// All done.
    Done,
}

/// What one [`ShardNode::step`] accomplished (parking hint for `run`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// Frames handled or events processed — keep going.
    Progress,
    /// Nothing to do this cycle — safe to block on the inbox briefly.
    Idle,
    /// The node's role in the run is complete.
    Finished,
}

/// A worker's final contribution, also assembled by the coordinator.
#[derive(Debug, Clone)]
struct DoneData {
    stats: ThreadStats,
    digests: Vec<(LpId, u64)>,
    pending_digest: u64,
    parked: u64,
}

/// The coordinator's assembled outcome of a whole distributed run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Per-shard stats merged into totals.
    pub totals: ThreadStats,
    /// Final per-LP state digests, ascending by LP.
    pub state_digests: Vec<(LpId, u64)>,
    /// XOR-fold of per-shard pending digests.
    pub pending_digest: u64,
    /// GVT rounds completed.
    pub gvt_rounds: u64,
    /// Final published GVT (ticks).
    pub gvt: u64,
    /// Raw-minimum regressions clamped by the coordinator (should be 0).
    pub regressions: u64,
    /// Maximum shards simultaneously parked by demand throttling (lower
    /// bound: folded from per-shard episode counts).
    pub max_parked: u64,
    /// Merged telemetry from every shard (present when tracing was on),
    /// mapped onto the coordinator's clock.
    pub telemetry: Option<TelemetryData>,
}

/// Heartbeat/lease failure detection, run by the coordinator over the
/// existing reliable links. Workers beacon [`Frame::Heartbeat`] on a
/// wall-clock cadence; the coordinator treats *any* inbound packet as life.
/// Suspicion is phi-style: a peer whose silence exceeds `phi_threshold`
/// times its mean inter-arrival gap gets a [`EventKind::HeartbeatMiss`]
/// telemetry instant (reset on the next arrival); only a full lease expiry
/// (`interval * miss_threshold` of silence) declares it dead.
#[derive(Debug, Clone)]
pub struct HeartbeatConfig {
    /// Wall-clock cadence of worker heartbeats.
    pub interval: Duration,
    /// Declare a peer dead after this many intervals of silence.
    pub miss_threshold: u32,
    /// Suspect (but don't kill) a peer whose silence exceeds this multiple
    /// of its mean inter-arrival gap.
    pub phi_threshold: f64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(25),
            miss_threshold: 40,
            phi_threshold: 8.0,
        }
    }
}

/// Tuning knobs a node needs beyond the engine's own [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Cycles between GVT round starts (coordinator pacing).
    pub gvt_interval_cycles: u64,
    /// Cycles between wave re-polls within a round.
    pub wave_interval_cycles: u64,
    /// Take a checkpoint cut every this many GVT rounds (0 = never).
    pub ckpt_every_rounds: u64,
    /// Wall-clock GVT-liveness watchdog for [`ShardNode::run`].
    pub watchdog: Option<Duration>,
    /// Scripted fault: die upon observing the `n`th GVT publish. Counted in
    /// protocol progress, not step cycles, so the kill lands at the same
    /// point of the simulation regardless of host speed or scheduling.
    pub kill_at: Option<u64>,
    /// Scripted kill dies *silently* (no cohort abort flag): the failure
    /// must be discovered by the heartbeat detector or a TCP hang-up.
    pub kill_silent: bool,
    /// Heartbeat failure detection (`None` = off; stepped runs leave it
    /// off because wall clocks have no meaning there).
    pub heartbeat: Option<HeartbeatConfig>,
    /// Scripted transient partitions on this node's outgoing links:
    /// `(peer, for_rounds)` — every frame to `peer` is swallowed until this
    /// node has run `for_rounds * gvt_interval_cycles` cycles, then the
    /// link heals and retransmission resumes delivery. Healing is clocked
    /// on the sender's own cycles (not GVT publishes) so a partition that
    /// stalls the GVT cannot deadlock its own heal.
    pub partitions: Vec<(usize, u64)>,
    /// Coordinator-only script: admit a joining shard at the first
    /// checkpoint cut assembled at or after the `n`th GVT publish.
    pub join_at: Option<u64>,
    /// Coordinator-only script: drain shard `.0` out at the first cut
    /// assembled at or after the `.1`th GVT publish.
    pub leave_at: Option<(usize, u64)>,
    /// Live tracing / round-snapshot collection (off by default).
    pub telemetry: TelemetryConfig,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            gvt_interval_cycles: 32,
            wave_interval_cycles: 4,
            ckpt_every_rounds: 0,
            watchdog: Some(Duration::from_secs(10)),
            kill_at: None,
            kill_silent: false,
            heartbeat: None,
            partitions: Vec::new(),
            join_at: None,
            leave_at: None,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// Shared slot the coordinator publishes assembled checkpoints into; the
/// launcher's recovery path restores every shard from it.
pub type CkptSlot<M> = Arc<Mutex<Option<Checkpoint<<M as Model>::State, <M as Model>::Payload>>>>;

/// One shard's contribution to a checkpoint cut: its LP checkpoints plus
/// the in-flight events it owns at the cut.
type ShardCut<M> = (
    Vec<LpCheckpoint<<M as Model>::State>>,
    Vec<Event<<M as Model>::Payload>>,
);

/// One shard: engine + links + GVT tracker (+ coordinator on shard 0).
pub struct ShardNode<M: Model> {
    pub shard: usize,
    n: usize,
    engine: ThreadEngine<M>,
    /// `links[p]` is the reliable link to shard `p` (`None` for self).
    links: Vec<Option<ReliableLink>>,
    inbox: Arc<Inbox>,
    tracker: GvtTracker,
    coord: Option<Coordinator>,
    cfg: NodeConfig,
    end_ticks: u64,
    /// Last published GVT (ticks) as seen by this node.
    gvt: u64,
    cycles: u64,
    /// GVT publishes this node has observed (scripted-kill clock).
    publishes_seen: u64,
    phase: Phase,
    /// Demand throttle: parked shards take no batches.
    parked: bool,
    parked_episodes: u64,
    /// Set while a `Publish{terminate}` has been seen by the coordinator.
    terminated: bool,
    /// Coordinator: round the terminate was published in.
    terminate_round: Option<u64>,
    // Round pacing (cycle counters, deterministic in stepped mode).
    round_due_at: u64,
    wave_due_at: Option<u64>,
    pending_wave: Option<(u64, u64)>, // (round, wave) to broadcast when due
    // Coordinator: checkpoint assembly.
    cut_parts: Vec<Option<ShardCut<M>>>,
    cut_round: Option<(u64, u64)>, // (round, gvt_ticks)
    last_cut_done: Option<u64>,
    ckpt_slot: Option<CkptSlot<M>>,
    flat_map: LpMap,
    // Coordinator: done collection.
    dones: Vec<Option<DoneData>>,
    outcome: Option<NodeOutcome>,
    /// Cohort-wide abort flag (set by a dying shard, checked by all).
    abort: Option<Arc<AtomicBool>>,
    // Watchdog.
    last_liveness: Instant,
    /// Cycles of ack-flushing after `Done` before calling it quits.
    flush_left: u64,
    outbox: Vec<Outbound<M::Payload>>,
    // Telemetry: per-shard registry + this node's (single) tracer.
    tel: Arc<Telemetry>,
    tracer: Tracer,
    /// Monotonic origin of this node's trace timestamps.
    t0: Instant,
    /// Wall time the current park episode began (trace only).
    park_t0: u64,
    /// Per-link retransmit counts already traced.
    retx_seen: Vec<u64>,
    /// Coordinator: telemetry merged from every shard's forward.
    tel_merged: TelemetryData,
    // Elastic membership.
    /// Per-peer log of every Sim message sent since the second-newest
    /// armed cut, keyed by send time (events) / twin receive time (antis).
    /// Replayed to a partially restored peer; maintained only when
    /// checkpoints are armed (`ckpt_every_rounds > 0`).
    send_log: Vec<Vec<(u64, Msg<M::Payload>)>>,
    /// Per-peer scratch for [`Self::route_outbox`]: one engine step's
    /// outbox grouped by destination, shipped as one [`Frame::SimBatch`]
    /// per peer. Kept on the node so the buffers' capacity survives steps.
    batch_bufs: Vec<Vec<(u64, Msg<M::Payload>)>>,
    /// GVT of the previous armed cut — the send-log retention horizon
    /// (recovery never restores from anything older than two cuts back).
    prev_armed_gvt: u64,
    /// Frames carrying a round number below this predate a recovery point
    /// and are dropped (stale Starts/Publishes/Reports/CutParts).
    min_valid_round: u64,
    /// Per peer: a partially restored peer is re-executing below our GVT;
    /// its duplicate sub-GVT messages are counted (for the white-counter
    /// match) but not delivered (we committed them long ago).
    replaying_from: Vec<bool>,
    /// The coordinator's published GVT at the moment partial recovery began.
    /// Publishes propagate asynchronously, so a survivor's own adopted GVT
    /// can lag the coordinator's floor; purging and duplicate-dropping must
    /// both key off the *global* floor or a lagging survivor rolls back into
    /// the committed window and re-sends below the coordinator's GVT.
    recovery_floor: u64,
    /// Per peer: its TCP reader pushed the hang-up sentinel.
    hung_up: Vec<bool>,
    // Heartbeat failure detection.
    last_hb_sent: Instant,
    hb_last_heard: Vec<Instant>,
    /// EWMA of inter-arrival gaps in ms (0 = no sample yet).
    hb_mean_ms: Vec<f64>,
    hb_suspected: Vec<bool>,
    // External-event ingest plane.
    /// This shard's admission gate (shared with the client-facing server).
    ingest: Option<Arc<IngestGate<M::Payload>>>,
    /// Set between a round's wave-0 epoch cut and its publish: injecting
    /// then could land an event below the frozen pending minimum, letting
    /// the round's GVT overshoot it. The pump waits for the publish.
    cut_open: bool,
    /// Reply slots for submissions this shard forwarded to their owners,
    /// keyed by the `key` echoed in [`Frame::IngestReply`].
    forward_slots: HashMap<u64, ReplySlot>,
    next_fwd_key: u64,
    /// Gate counters already folded into round telemetry (delta instants).
    ingest_prev: (u64, u64, u64, u64),
}

impl<M: Model> ShardNode<M> {
    /// Build one shard node. `flat_map` maps every LP to its owning shard
    /// (`SimThreadId(shard)`); `links[p]` must be `Some` exactly for
    /// `p != shard`. Shard 0 becomes the coordinator and needs `ckpt_slot`
    /// when checkpoints are armed.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: Arc<M>,
        flat_map: LpMap,
        shard: usize,
        num_shards: usize,
        ecfg: &EngineConfig,
        ncfg: NodeConfig,
        links: Vec<Option<ReliableLink>>,
        inbox: Arc<Inbox>,
        ckpt_slot: Option<CkptSlot<M>>,
        abort: Option<Arc<AtomicBool>>,
    ) -> ShardNode<M> {
        assert_eq!(links.len(), num_shards);
        assert!(links[shard].is_none(), "no link to self");
        let engine = ThreadEngine::new(
            Arc::clone(&model),
            flat_map.clone(),
            pdes_core::SimThreadId(shard as u32),
            ecfg,
        );
        let tel = Telemetry::new(ncfg.telemetry.clone());
        let tracer = tel.tracer(0);
        let mut links = links;
        // Scripted partitions are live from the first cycle.
        for &(to, _) in &ncfg.partitions {
            if let Some(l) = links[to].as_mut() {
                l.set_partitioned(true);
            }
        }
        ShardNode {
            shard,
            n: num_shards,
            engine,
            links,
            inbox,
            tracker: GvtTracker::new(num_shards),
            coord: (shard == 0).then(|| Coordinator::new(num_shards)),
            cfg: ncfg,
            end_ticks: ecfg.end_time.ticks(),
            gvt: 0,
            cycles: 0,
            publishes_seen: 0,
            phase: Phase::Running,
            parked: false,
            parked_episodes: 0,
            terminated: false,
            terminate_round: None,
            round_due_at: 0,
            wave_due_at: None,
            pending_wave: None,
            cut_parts: vec![None; num_shards],
            cut_round: None,
            last_cut_done: None,
            ckpt_slot,
            flat_map,
            dones: vec![None; num_shards],
            outcome: None,
            abort,
            last_liveness: Instant::now(),
            flush_left: 0,
            outbox: Vec::new(),
            tel,
            tracer,
            t0: Instant::now(),
            park_t0: 0,
            retx_seen: vec![0; num_shards],
            tel_merged: TelemetryData::default(),
            send_log: vec![Vec::new(); num_shards],
            batch_bufs: vec![Vec::new(); num_shards],
            prev_armed_gvt: 0,
            min_valid_round: 0,
            replaying_from: vec![false; num_shards],
            recovery_floor: 0,
            hung_up: vec![false; num_shards],
            last_hb_sent: Instant::now(),
            hb_last_heard: vec![Instant::now(); num_shards],
            hb_mean_ms: vec![0.0; num_shards],
            hb_suspected: vec![false; num_shards],
            ingest: None,
            cut_open: false,
            forward_slots: HashMap::new(),
            next_fwd_key: 0,
            ingest_prev: (0, 0, 0, 0),
        }
    }

    /// Attach this shard's ingest gate. Must be called before
    /// [`Self::restore`] so a restored node replays the gate's
    /// accepted-but-uncut suffix into the rebuilt engine.
    pub fn set_ingest(&mut self, gate: Arc<IngestGate<M::Payload>>) {
        gate.set_floor(VirtualTime::from_ticks(self.gvt));
        self.ingest = Some(gate);
    }

    /// Raise the gate's admission floor (recovery: the coordinator's
    /// published GVT may exceed what this node has adopted locally).
    pub fn raise_ingest_floor(&self, floor: u64) {
        if let Some(g) = &self.ingest {
            g.set_floor(VirtualTime::from_ticks(floor));
        }
    }

    /// Nanoseconds on this node's own monotonic trace clock.
    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Park the shard (demand throttling), tracing the episode start.
    fn park_shard(&mut self) {
        self.parked = true;
        self.parked_episodes += 1;
        if self.tracer.enabled() {
            self.park_t0 = self.now_ns();
        }
    }

    /// Un-park the shard and close the traced park span.
    fn unpark_shard(&mut self) {
        self.parked = false;
        if self.tracer.enabled() {
            let now = self.now_ns();
            self.tracer
                .span(EventKind::Park, self.park_t0, now, self.shard as u64);
            self.tracer
                .instant(EventKind::Unpark, now, self.shard as u64);
        }
    }

    /// Published GVT (ticks) as seen by this node.
    pub fn gvt(&self) -> u64 {
        self.gvt
    }

    /// The engine's pending minimum (ticks) — for invariant checks.
    pub fn local_min_ticks(&self) -> u64 {
        self.engine.local_min().ticks()
    }

    /// `true` once the node's role in the run is complete.
    pub fn finished(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The coordinator's assembled run outcome (present after it finishes).
    pub fn take_outcome(&mut self) -> Option<NodeOutcome> {
        self.outcome.take()
    }

    /// Restore this shard from a checkpointed global cut (recovery path).
    /// The engine filters `ck.lps` / `ck.events` by ownership itself. An
    /// attached ingest gate replays its accepted-but-uncut suffix
    /// (`send_time >= cut`) back into the engine — the exact complement of
    /// what the cut preserved, so every accepted event survives exactly
    /// once.
    pub fn restore(&mut self, ck: &Checkpoint<M::State, M::Payload>) -> Result<(), DistError> {
        self.engine.restore(&ck.lps, &ck.events, ck.gvt);
        self.gvt = ck.gvt.ticks();
        if let Some(c) = &mut self.coord {
            c.gvt = ck.gvt.ticks();
            c.rounds_done = ck.gvt_rounds;
        }
        self.round_due_at = self.cfg.gvt_interval_cycles;
        self.cut_open = false;
        if let Some(gate) = self.ingest.clone() {
            let mut replay = Vec::new();
            gate.reinject_after_restore(ck.gvt, &mut |ev| replay.push(ev));
            for ev in replay {
                // Admission is owned-only, so these are normally local; a
                // reshape may have moved the LP, in which case the event
                // ships to its new owner like any other simulation message.
                if self.flat_map.thread_of(ev.key.dst).index() == self.shard {
                    let mut outbox = std::mem::take(&mut self.outbox);
                    self.engine.deliver(Msg::Event(ev), &mut outbox);
                    self.outbox = outbox;
                } else {
                    let dst = self.flat_map.thread_of(ev.key.dst).index();
                    self.send_sim(dst, Msg::Event(ev))?;
                }
            }
            self.route_outbox()?;
        }
        Ok(())
    }

    /// `true` while the node is in its normal simulating phase (partial
    /// recovery is only safe for survivors that haven't begun teardown).
    pub fn is_running(&self) -> bool {
        self.phase == Phase::Running
    }

    /// Whether `peer`'s TCP reader has pushed its hang-up sentinel.
    pub fn peer_hung_up(&self, peer: usize) -> bool {
        self.hung_up[peer]
    }

    /// The round number the coordinator will open next (recovery fencing).
    pub fn upcoming_round(&self) -> u64 {
        self.coord
            .as_ref()
            .map(|c| c.upcoming_round())
            .unwrap_or(self.min_valid_round)
    }

    /// Swap in a fresh cohort-wide abort flag for the next attempt.
    pub fn set_abort(&mut self, abort: Option<Arc<AtomicBool>>) {
        self.abort = abort;
    }

    /// Replace the link to `peer` (recovery: the peer was rebuilt, so its
    /// seq/ack state restarted from zero).
    pub fn replace_link(&mut self, peer: usize, link: ReliableLink) {
        self.links[peer] = Some(link);
        self.retx_seen[peer] = 0;
    }

    /// Sever the transport under the link to `peer` (recovery prep, TCP):
    /// a socket shutdown reaches *both* ends' reader threads, so the dead
    /// node's blocked reader unblocks and this node's own reader pushes its
    /// hang-up sentinel.
    pub fn hangup_link(&mut self, peer: usize) {
        if let Some(l) = self.links[peer].as_mut() {
            l.hangup();
        }
    }

    /// Emit a supervisor-originated telemetry instant (membership events)
    /// onto this node's trace clock.
    pub fn trace_instant(&mut self, kind: EventKind, arg: u64) {
        if self.tracer.enabled() {
            let now = self.now_ns();
            self.tracer.instant(kind, now, arg);
        }
    }

    /// Recovery prep: drop every queued raw packet. Anything dropped here
    /// was never run through [`ReliableLink::on_packet`], hence never
    /// acked — the sender's retransmission redelivers it. Sentinels are
    /// recorded, not dropped.
    pub fn drain_inbox_dropping(&mut self) {
        for (peer, bytes) in self.inbox.drain() {
            if bytes.is_empty() {
                self.hung_up[peer] = true;
            }
        }
    }

    /// Recovery prep (TCP): wait until the dead peer's *old* reader thread
    /// pushes its hang-up sentinel, so it cannot be mistaken for the fresh
    /// link's hang-up later. Drops everything drained along the way (see
    /// [`Self::drain_inbox_dropping`]). Returns `false` on timeout.
    pub fn await_hangup(&mut self, peer: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.hung_up[peer] {
            self.drain_inbox_dropping();
            if self.hung_up[peer] {
                break;
            }
            if Instant::now() >= deadline {
                return false;
            }
            self.inbox.wait_nonempty(Duration::from_millis(2));
        }
        true
    }

    /// Survivor-side entry into partial recovery, called by the supervisor
    /// between thread runs (never concurrently with [`Self::step`]):
    /// - void every GVT counter shared with the dead peers (their fresh
    ///   incarnations restart those pairs from zero);
    /// - mark them `replaying_from` so their re-executed sub-GVT duplicates
    ///   are counted but not re-delivered;
    /// - fence stale round traffic below `min_valid_round`;
    /// - adopt `floor` (the coordinator's published GVT) as the recovery
    ///   floor — a survivor whose own adopted GVT lags the coordinator's
    ///   (the final pre-kill publish may still be in flight) must purge and
    ///   duplicate-drop against the global floor, not its stale local one;
    /// - abandon any cut assembly in progress (coordinator) and enter GVT
    ///   recovery mode.
    pub fn begin_peer_recovery(&mut self, dead: &[usize], min_valid_round: u64, floor: u64) {
        for &d in dead {
            self.tracker.reset_peer(d);
            self.replaying_from[d] = true;
            self.hung_up[d] = false;
            self.hb_mean_ms[d] = 0.0;
            self.hb_suspected[d] = false;
        }
        self.min_valid_round = min_valid_round;
        self.recovery_floor = self.recovery_floor.max(floor).max(self.gvt);
        // Any wave-0 cut in flight is abandoned with the round; admissions
        // stay fenced anyway until the replay window closes.
        self.cut_open = false;
        self.raise_ingest_floor(self.recovery_floor);
        self.pending_wave = None;
        self.wave_due_at = None;
        self.cut_round = None;
        self.cut_parts = vec![None; self.n];
        self.round_due_at = self.cycles + self.cfg.gvt_interval_cycles;
        self.last_liveness = Instant::now();
        self.hb_last_heard = vec![Instant::now(); self.n];
        if let Some(c) = &mut self.coord {
            c.begin_recovery();
        }
    }

    /// Replay this node's send log to a partially restored `peer`: ship
    /// every logged event with `send_time >= since_send` (the cut GVT —
    /// older sends are inside the checkpoint the peer restored from), and
    /// every anti-message whose twin was shipped. The log is kept — a later
    /// failure replays again from a newer cut. Returns the frames shipped.
    pub fn replay_log_to(&mut self, peer: usize, since_send: u64) -> Result<u64, DistError> {
        let log = std::mem::take(&mut self.send_log[peer]);
        let mut replayed: Vec<EventKey> = Vec::new();
        let mut shipped = 0u64;
        for (_, msg) in &log {
            let ship = match msg {
                Msg::Event(e) => {
                    let s = e.send_time.ticks() >= since_send;
                    if s {
                        replayed.push(e.key);
                    }
                    s
                }
                Msg::Anti(k) => replayed.contains(k),
            };
            if ship {
                shipped += 1;
                let tag = self.tracker.note_sent(peer);
                self.send_frame(
                    peer,
                    &Frame::Sim {
                        tag,
                        msg: msg.clone(),
                    },
                )?;
            }
        }
        self.send_log[peer] = log;
        Ok(shipped)
    }

    /// Purge every input this engine took from the dead shards' LPs in the
    /// window the restored peer will re-execute (`send >= cut GVT` and
    /// `recv >= recovery floor` — inputs received below the coordinator's
    /// published GVT are globally fixed and the peer's re-sent duplicates
    /// are dropped at the link instead). Cascade anti-messages are routed
    /// normally (and logged, so they reach the restored peer in order after
    /// the replay).
    pub fn purge_dead_inputs(
        &mut self,
        dead_lps: &[LpId],
        since_send: u64,
    ) -> Result<u64, DistError> {
        let mut outbox = std::mem::take(&mut self.outbox);
        let purged = self.engine.purge_inputs_from(
            dead_lps,
            VirtualTime::from_ticks(since_send),
            VirtualTime::from_ticks(self.recovery_floor.max(self.gvt)),
            &mut outbox,
        );
        self.outbox = outbox;
        self.route_outbox()?;
        Ok(purged)
    }

    /// Route this shard's initial events (fresh starts only — a restored
    /// run's events live in the checkpoint).
    pub fn bootstrap(&mut self) -> Result<(), DistError> {
        let init = self.engine.take_init_events();
        for (tid, msg) in init {
            let dst = tid.index();
            if dst == self.shard {
                let mut outbox = std::mem::take(&mut self.outbox);
                self.engine.deliver(msg, &mut outbox);
                self.outbox = outbox;
            } else {
                self.send_sim(dst, msg)?;
            }
        }
        self.route_outbox()
    }

    fn send_frame(
        &mut self,
        peer: usize,
        frame: &Frame<M::State, M::Payload>,
    ) -> Result<(), DistError> {
        let bytes = wire::to_bytes(frame);
        let shard = self.shard;
        let Some(link) = self.links[peer].as_mut() else {
            return Err(DistError::Protocol {
                shard,
                detail: format!("no link {shard} -> {peer} for {} frame", frame.kind()),
            });
        };
        match link.send(&bytes) {
            Ok(()) => Ok(()),
            // A broken pipe while flushing final acks is not an error: the
            // peer already finished and hung up.
            Err(_) if self.phase >= Phase::Flushing => Ok(()),
            Err(e) => Err(DistError::Io(e)),
        }
    }

    fn send_sim(&mut self, peer: usize, msg: Msg<M::Payload>) -> Result<(), DistError> {
        if self.cfg.ckpt_every_rounds > 0 {
            let t = match &msg {
                Msg::Event(e) => e.send_time.ticks(),
                Msg::Anti(k) => k.recv_time.ticks(),
            };
            self.send_log[peer].push((t, msg.clone()));
        }
        let tag = self.tracker.note_sent(peer);
        self.send_frame(peer, &Frame::Sim { tag, msg })
    }

    /// Drop send-log entries that no reachable recovery can need: events
    /// sent below the previous armed cut (a restore always uses one of the
    /// two newest cuts) and anti-messages whose twin was dropped.
    fn prune_send_logs(&mut self, keep_from: u64) {
        for log in &mut self.send_log {
            let mut kept: Vec<EventKey> = log
                .iter()
                .filter_map(|(t, m)| match m {
                    Msg::Event(e) if *t >= keep_from => Some(e.key),
                    _ => None,
                })
                .collect();
            kept.sort_unstable();
            log.retain(|(t, m)| match m {
                Msg::Event(_) => *t >= keep_from,
                Msg::Anti(k) => kept.binary_search(k).is_ok(),
            });
        }
    }

    /// Drain the engine outbox: color and ship remote messages. Send order
    /// MUST be preserved per peer — an anti-message overtaking the re-send
    /// of its twin (or vice versa) would insert a duplicate key at the
    /// receiver. The drain groups messages by destination (stable within
    /// each peer) and ships each group as a single [`Frame::SimBatch`]: one
    /// serialize and one wire write per peer per step instead of one per
    /// event — the hot-path fix that takes the TCP shard runtime off a
    /// syscall-per-event budget. Epoch tags and the recovery send-log are
    /// still maintained per message, exactly as [`Self::send_sim`] does.
    fn route_outbox(&mut self) -> Result<(), DistError> {
        let mut out = std::mem::take(&mut self.outbox);
        if out.is_empty() {
            return Ok(());
        }
        let mut batches = std::mem::take(&mut self.batch_bufs);
        for (tid, msg) in out.drain(..) {
            let dst = tid.index();
            debug_assert_ne!(dst, self.shard, "engine outbox never holds local msgs");
            if self.cfg.ckpt_every_rounds > 0 {
                let t = match &msg {
                    Msg::Event(e) => e.send_time.ticks(),
                    Msg::Anti(k) => k.recv_time.ticks(),
                };
                self.send_log[dst].push((t, msg.clone()));
            }
            let tag = self.tracker.note_sent(dst);
            batches[dst].push((tag, msg));
        }
        self.outbox = out;
        let mut res = Ok(());
        for (peer, batch) in batches.iter_mut().enumerate() {
            if batch.is_empty() || res.is_err() {
                continue;
            }
            res = if batch.len() == 1 {
                let (tag, msg) = batch.pop().expect("len checked");
                self.send_frame(peer, &Frame::Sim { tag, msg })
            } else {
                let msgs = std::mem::take(batch);
                self.send_frame(peer, &Frame::SimBatch { msgs })
            };
            batch.clear();
        }
        self.batch_bufs = batches;
        res
    }

    fn protocol_err(&self, detail: impl Into<String>) -> DistError {
        DistError::Protocol {
            shard: self.shard,
            detail: detail.into(),
        }
    }

    /// Admit queued external submissions against the current floor. Owned
    /// destinations inject straight into the engine (inside the gate lock,
    /// so no fence interleaves); submissions for LPs another shard owns are
    /// forwarded as [`Frame::Ingest`]; verdicts for submissions *we* host on
    /// behalf of another shard go back as [`Frame::IngestReply`].
    ///
    /// Fencing: no injection while this round's wave-0 cut epoch is open
    /// (the frozen pending minimum would not cover the new event) or while
    /// a partially restored peer is still re-executing below the recovery
    /// floor (admissions are floor-fenced, but survivors stay quiet until
    /// the cohort is back on a matched round).
    fn pump_ingest(&mut self) -> Result<u64, DistError> {
        let Some(gate) = self.ingest.clone() else {
            return Ok(0);
        };
        if self.phase != Phase::Running || self.cut_open || self.replaying_from.iter().any(|&r| r) {
            return Ok(0);
        }
        let map = &self.flat_map;
        let shard = self.shard;
        let engine = &mut self.engine;
        let mut outbox = std::mem::take(&mut self.outbox);
        let out = gate.pump(
            |lp| lp.0 < map.num_lps && map.thread_of(lp).index() == shard,
            &mut |ev| {
                engine.deliver(Msg::Event(ev), &mut outbox);
            },
        );
        self.outbox = outbox;
        let out = out.map_err(DistError::Ingest)?;
        self.route_outbox()?;
        if out.injected > 0 && self.parked {
            // External demand re-activates a demand-throttled shard, same
            // as an inbound remote event.
            self.unpark_shard();
        }
        for (peer, key, reply) in out.remote_replies {
            self.send_frame(peer as usize, &Frame::IngestReply { key, reply })?;
        }
        for entry in out.forward {
            let dst = entry.req.dst;
            if dst.0 >= self.flat_map.num_lps {
                // No such LP in this model: shed rather than panic deeper in
                // the mapping (the client-facing server validates upstream).
                self.resolve_forward_slot(entry.slot, IngestReply::Shed)?;
                continue;
            }
            let owner = self.flat_map.thread_of(dst).index();
            if owner == self.shard {
                // Raced an ownership change; retry through the gate next
                // pump rather than special-casing here.
                self.resolve_forward_slot(entry.slot, IngestReply::Shed)?;
                continue;
            }
            let key = self.next_fwd_key;
            self.next_fwd_key += 1;
            self.forward_slots.insert(key, entry.slot);
            self.send_frame(
                owner,
                &Frame::Ingest {
                    origin: self.shard as u64,
                    key,
                    req: entry.req,
                },
            )?;
        }
        Ok(out.injected)
    }

    /// Deliver a verdict to a slot outside the gate (forwarding paths).
    fn resolve_forward_slot(
        &mut self,
        slot: ReplySlot,
        reply: IngestReply,
    ) -> Result<(), DistError> {
        match slot {
            ReplySlot::None => Ok(()),
            ReplySlot::Local(f) => {
                f(reply);
                Ok(())
            }
            ReplySlot::Remote { peer, key } => {
                self.send_frame(peer as usize, &Frame::IngestReply { key, reply })
            }
        }
    }

    /// A peer forwarded an external submission for an LP this shard owns:
    /// run it through the local gate; immediate verdicts bounce straight
    /// back, queued ones answer at a later pump via the remote slot.
    fn handle_ingest(
        &mut self,
        origin: usize,
        key: u64,
        req: IngestRequest<M::Payload>,
    ) -> Result<(), DistError> {
        let verdict = match &self.ingest {
            Some(g) => g.submit(
                req,
                ReplySlot::Remote {
                    peer: origin as u64,
                    key,
                },
            ),
            None => Some(IngestReply::Closed),
        };
        match verdict {
            Some(reply) => self.send_frame(origin, &Frame::IngestReply { key, reply }),
            None => Ok(()),
        }
    }

    /// The owning shard's verdict for a submission we forwarded.
    fn handle_ingest_reply(&mut self, key: u64, reply: IngestReply) -> Result<(), DistError> {
        if let Some(slot) = self.forward_slots.remove(&key) {
            self.resolve_forward_slot(slot, reply)?;
        }
        Ok(())
    }

    /// One main-loop cycle.
    pub fn step(&mut self) -> Result<StepStatus, DistError> {
        if self.phase == Phase::Done {
            return Ok(StepStatus::Finished);
        }
        if let Some(abort) = &self.abort {
            if abort.load(Ordering::Relaxed)
                && self.cfg.kill_at.is_none_or(|at| self.publishes_seen < at)
            {
                return Err(DistError::Aborted { shard: self.shard });
            }
        }
        self.cycles += 1;

        let mut progress = false;

        // 0. Scripted partitions heal on this node's own cycle clock.
        for i in 0..self.cfg.partitions.len() {
            let (to, rounds) = self.cfg.partitions[i];
            if self.cycles >= rounds.saturating_mul(self.cfg.gvt_interval_cycles) {
                if let Some(l) = self.links[to].as_mut() {
                    l.set_partitioned(false);
                }
            }
        }

        // 1. Drain the inbox through the reliable links into frame handling.
        for (peer, bytes) in self.inbox.drain() {
            progress = true;
            if bytes.is_empty() {
                // Link-closed sentinel from a TCP reader.
                self.hung_up[peer] = true;
                if self.phase >= Phase::Draining {
                    continue;
                }
                if let Some(abort) = &self.abort {
                    abort.store(true, Ordering::Relaxed);
                }
                return Err(DistError::PeerDead {
                    shard: peer,
                    detail: format!("shard {peer} hung up mid-run"),
                });
            }
            if self.links[peer].is_none() {
                return Err(self.protocol_err(format!("packet from unlinked peer {peer}")));
            }
            // Any inbound packet is proof of life for the failure detector.
            if self.cfg.heartbeat.is_some() && self.coord.is_some() {
                let gap_ms = self.hb_last_heard[peer].elapsed().as_secs_f64() * 1000.0;
                self.hb_last_heard[peer] = Instant::now();
                self.hb_mean_ms[peer] = if self.hb_mean_ms[peer] > 0.0 {
                    0.9 * self.hb_mean_ms[peer] + 0.1 * gap_ms
                } else {
                    gap_ms
                };
                self.hb_suspected[peer] = false;
            }
            let link = self.links[peer].as_mut().expect("checked above");
            let frames = link.on_packet(&bytes)?;
            for fb in frames {
                let frame: Frame<M::State, M::Payload> = wire::from_bytes(&fb)?;
                self.handle_frame(peer, frame)?;
            }
        }

        // 1b. Heartbeats: workers beacon on a wall-clock cadence; the
        // coordinator audits every peer's lease.
        if let Some(interval) = self.cfg.heartbeat.as_ref().map(|h| h.interval) {
            if self.shard != 0
                && self.phase <= Phase::Draining
                && self.last_hb_sent.elapsed() >= interval
            {
                self.last_hb_sent = Instant::now();
                self.send_frame(
                    0,
                    &Frame::Heartbeat {
                        shard: self.shard as u64,
                    },
                )?;
            }
        }
        self.check_peer_liveness()?;

        // 2. Coordinator: drive rounds.
        self.drive_rounds()?;

        // 2b. Admit external events between rounds (never while a wave-0
        // cut epoch is open or a restored peer is replaying).
        if self.pump_ingest()? > 0 {
            progress = true;
        }

        // 3. Simulate.
        if self.phase == Phase::Running && !self.parked {
            let trace = self.tracer.enabled();
            let b0 = if trace { self.now_ns() } else { 0 };
            let rb0 = self.engine.stats().rolled_back;
            let mut outbox = std::mem::take(&mut self.outbox);
            let out = self.engine.process_batch(self.engine_batch(), &mut outbox);
            self.outbox = outbox;
            self.route_outbox()?;
            if out.processed > 0 {
                progress = true;
                if trace {
                    let now = self.now_ns();
                    self.tracer
                        .span(EventKind::EventBatch, b0, now, out.processed as u64);
                    let rb = self.engine.stats().rolled_back;
                    if rb > rb0 {
                        self.tracer.instant(EventKind::Rollback, now, rb - rb0);
                    }
                }
            }
            // Demand check between publishes: new local work un-parks; a
            // shard that just went empty waits for the next publish to park
            // (publish is the scheduling decision point).
        } else if self.phase == Phase::Running && self.parked && self.engine.has_live_pending() {
            self.unpark_shard();
            progress = true;
        }

        // 4. Pump every link (acks, retransmits, delayed releases).
        for p in 0..self.n {
            let mut retx = None;
            if let Some(link) = self.links[p].as_mut() {
                match link.pump() {
                    Ok(()) => {}
                    Err(_) if self.phase >= Phase::Flushing => {}
                    Err(e) => return Err(DistError::Io(e)),
                }
                retx = Some(link.retransmits);
            }
            if let Some(rx) = retx {
                if rx > self.retx_seen[p] && self.tracer.enabled() {
                    // arg packs (peer, episodes-since-last-trace).
                    let delta = rx - self.retx_seen[p];
                    let now = self.now_ns();
                    self.tracer
                        .instant(EventKind::LinkRetransmit, now, ((p as u64) << 32) | delta);
                }
                self.retx_seen[p] = rx.max(self.retx_seen[p]);
            }
        }

        // 5. Flushing: stay until every outgoing frame is acked (the `Done`
        // must reach the coordinator; the coordinator must collect all of
        // them), plus a short grace for reactive acks to peers.
        if self.phase == Phase::Flushing {
            self.flush_left = self.flush_left.saturating_sub(1);
            let drained = self.links.iter().flatten().all(|l| l.drained());
            if drained && self.flush_left == 0 && (self.coord.is_none() || self.outcome.is_some()) {
                self.phase = Phase::Done;
                return Ok(StepStatus::Finished);
            }
            return Ok(StepStatus::Progress);
        }

        Ok(if progress {
            StepStatus::Progress
        } else {
            StepStatus::Idle
        })
    }

    fn engine_batch(&self) -> usize {
        // The engine already bounds optimism by gvt_hint + window; the batch
        // size only controls how often the node services its links.
        64
    }

    /// Coordinator-only failure detector: suspect a peer (telemetry) when
    /// its silence is phi-anomalous; declare it dead when its lease runs
    /// out. Death aborts the cohort so the supervisor can recover.
    fn check_peer_liveness(&mut self) -> Result<(), DistError> {
        let Some(hb) = self.cfg.heartbeat.clone() else {
            return Ok(());
        };
        if self.coord.is_none() || self.phase != Phase::Running {
            return Ok(());
        }
        for p in 0..self.n {
            if p == self.shard {
                continue;
            }
            let elapsed = self.hb_last_heard[p].elapsed();
            let mean_ms = if self.hb_mean_ms[p] > 0.0 {
                self.hb_mean_ms[p]
            } else {
                hb.interval.as_secs_f64() * 1000.0
            };
            let phi = elapsed.as_secs_f64() * 1000.0 / mean_ms.max(0.01);
            if phi > hb.phi_threshold && !self.hb_suspected[p] {
                self.hb_suspected[p] = true;
                if self.tracer.enabled() {
                    let now = self.now_ns();
                    self.tracer.instant(EventKind::HeartbeatMiss, now, p as u64);
                }
            }
            if elapsed >= hb.interval * hb.miss_threshold {
                if let Some(abort) = &self.abort {
                    abort.store(true, Ordering::Relaxed);
                }
                return Err(DistError::PeerDead {
                    shard: p,
                    detail: format!(
                        "lease expired: silent for {:.0} ms ({} x {} ms)",
                        elapsed.as_secs_f64() * 1000.0,
                        hb.miss_threshold,
                        hb.interval.as_millis()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Coordinator-only: open rounds on schedule, re-poll waves when due.
    fn drive_rounds(&mut self) -> Result<(), DistError> {
        if self.coord.is_none() || self.phase > Phase::Draining {
            return Ok(());
        }
        // Broadcast a due wave re-poll.
        if let (Some((round, wave)), Some(due)) = (self.pending_wave, self.wave_due_at) {
            if self.cycles >= due {
                self.pending_wave = None;
                self.wave_due_at = None;
                self.broadcast_start(round, wave)?;
            }
        }
        let (in_flight, recovering, rounds_done) = match self.coord.as_ref() {
            Some(c) => (c.round.is_some(), c.recovering, c.rounds_done),
            None => return Ok(()), // unreachable: gated above
        };
        if !in_flight && self.cycles >= self.round_due_at {
            // No cut while a restored shard is still re-executing below the
            // floor — its engine is not yet on any consistent global cut.
            let armed = self.phase == Phase::Running
                && self.cfg.ckpt_every_rounds > 0
                && !recovering
                && (rounds_done + 1).is_multiple_of(self.cfg.ckpt_every_rounds);
            let round = match self.coord.as_mut() {
                Some(c) => c.start_round(armed),
                None => return Ok(()),
            };
            self.broadcast_start(round, 0)?;
        }
        Ok(())
    }

    fn broadcast_start(&mut self, round: u64, wave: u64) -> Result<(), DistError> {
        let armed = match self.coord.as_ref() {
            Some(c) => c.armed,
            None => return Err(self.protocol_err("broadcast_start on a non-coordinator")),
        };
        let f = Frame::Start { round, wave, armed };
        for p in 0..self.n {
            if p != self.shard {
                self.send_frame(p, &f)?;
            }
        }
        // The coordinator is also a shard: handle its own Start inline.
        self.handle_frame(self.shard, f)
    }

    fn handle_frame(
        &mut self,
        peer: usize,
        frame: Frame<M::State, M::Payload>,
    ) -> Result<(), DistError> {
        match frame {
            Frame::Hello { .. } => Err(self.protocol_err("Hello inside the reliable stream")),
            Frame::Sim { tag, msg } => self.handle_sim(peer, tag, msg),
            Frame::SimBatch { msgs } => {
                // In-batch order is send order; delivering in sequence
                // preserves the per-peer FIFO contract of `Frame::Sim`.
                for (tag, msg) in msgs {
                    self.handle_sim(peer, tag, msg)?;
                }
                Ok(())
            }
            Frame::Start { round, wave, .. } => self.handle_start(round, wave),
            Frame::Report {
                round,
                wave,
                shard,
                pending_min,
                late_min,
                white_sent,
                white_recvd,
            } => self.handle_report(
                round,
                shard as usize,
                ShardReport {
                    wave,
                    pending_min,
                    late_min,
                    white_sent,
                    white_recvd,
                },
            ),
            Frame::Publish {
                round,
                gvt,
                armed,
                terminate,
                recovering,
            } => self.handle_publish(round, gvt, armed, terminate, recovering),
            // Pure liveness beacon: its arrival already fed the detector.
            Frame::Heartbeat { .. } => Ok(()),
            Frame::Finish => self.handle_finish(),
            Frame::CutPart {
                round,
                shard,
                lps,
                events,
            } => self.handle_cut_part(round, shard as usize, lps, events),
            Frame::Done {
                shard,
                stats,
                digests,
                pending_digest,
                parked,
            } => self.handle_done(
                shard as usize,
                DoneData {
                    stats,
                    digests,
                    pending_digest,
                    parked,
                },
            ),
            Frame::Ingest { origin, key, req } => self.handle_ingest(origin as usize, key, req),
            Frame::IngestReply { key, reply } => self.handle_ingest_reply(key, reply),
            Frame::Telemetry {
                shard,
                sent_at_ns,
                data,
            } => self.handle_telemetry(shard, sent_at_ns, data),
        }
    }

    fn handle_sim(&mut self, peer: usize, tag: u64, msg: Msg<M::Payload>) -> Result<(), DistError> {
        let recv_ticks = msg.recv_time().ticks();
        self.tracker.note_recvd(peer, tag, recv_ticks);
        // A partially restored peer deterministically re-sends what is
        // already fixed below the recovery floor: count it (the
        // white-counter match needs every arrival) but do not re-deliver —
        // the copies we hold below the floor are identical by deterministic
        // re-execution.
        if self.replaying_from[peer] && recv_ticks < self.recovery_floor.max(self.gvt) {
            return Ok(());
        }
        match self.phase {
            Phase::Running | Phase::Draining => {
                // THE safety check: a message below the published GVT means
                // the distributed GVT overshot the true global minimum.
                if recv_ticks < self.gvt {
                    return Err(self.protocol_err(format!(
                        "GVT overshoot: message (tag {tag}) from shard {peer} at t={recv_ticks} \
                         below published gvt={}",
                        self.gvt
                    )));
                }
                if self.parked {
                    // Inbound demand re-activates a parked shard.
                    self.parked = false;
                }
                let mut outbox = std::mem::take(&mut self.outbox);
                self.engine.deliver(msg, &mut outbox);
                self.outbox = outbox;
                self.route_outbox()
            }
            // After finalize, nothing may touch the engine; the drain round
            // proved no such message can exist.
            Phase::Flushing | Phase::Done => {
                Err(self.protocol_err(format!("Sim frame from shard {peer} after Finish")))
            }
        }
    }

    fn handle_start(&mut self, round: u64, wave: u64) -> Result<(), DistError> {
        if round < self.min_valid_round {
            return Ok(()); // stale: predates a recovery point
        }
        // Round traffic counts as liveness: long multi-wave rounds must not
        // trip a participant's watchdog.
        self.last_liveness = Instant::now();
        let trace = self.tracer.enabled();
        let ph0 = if trace { self.now_ns() } else { 0 };
        if wave == 0 {
            // The epoch cut freezes this round's pending minimum: no ingest
            // injection until the publish, or the new event could sit below
            // the frozen minimum and the round's GVT overshoot it.
            self.cut_open = true;
            self.tracker
                .take_cut(round, self.engine.local_min().ticks());
        }
        let (pending_min, late_min, white_sent, white_recvd) = self.tracker.report();
        let rep = Frame::Report {
            round,
            wave,
            shard: self.shard as u64,
            pending_min,
            late_min,
            white_sent,
            white_recvd,
        };
        // Trace mapping: the cut + report build is Phase A, the report
        // dispatch is Send-A. On the coordinator the report is self-handled
        // (and may close the round inline), so its Send-A is a point span.
        let t1 = if trace {
            let t1 = self.now_ns();
            self.tracer.span(EventKind::GvtA, ph0, t1, round);
            t1
        } else {
            0
        };
        if self.shard == 0 {
            if trace {
                self.tracer.span(EventKind::GvtSendA, t1, t1, round);
            }
            self.handle_frame(0, rep)
        } else {
            let r = self.send_frame(0, &rep);
            if trace {
                self.tracer
                    .span(EventKind::GvtSendA, t1, self.now_ns(), round);
            }
            r
        }
    }

    fn handle_report(
        &mut self,
        round: u64,
        shard: usize,
        rep: ShardReport,
    ) -> Result<(), DistError> {
        if round < self.min_valid_round {
            return Ok(()); // stale: predates a recovery point
        }
        let Some(coord) = self.coord.as_mut() else {
            return Err(self.protocol_err("Report received by non-coordinator"));
        };
        match coord.on_report(round, shard, rep) {
            RoundClosure::Pending => Ok(()),
            RoundClosure::NextWave(wave) => {
                // Pace the re-poll: give late whites a few cycles to land.
                self.pending_wave = Some((round, wave));
                self.wave_due_at = Some(self.cycles + self.cfg.wave_interval_cycles);
                Ok(())
            }
            RoundClosure::Publish { gvt } => {
                let armed = coord.armed;
                // Read *after* on_report: the round that lifts the raw
                // minimum back to the floor clears recovery inline, and its
                // own publish is already a normal one.
                let recovering = coord.recovering;
                let was_terminated = self.terminated;
                let terminate = gvt >= self.end_ticks;
                self.terminated = self.terminated || terminate;
                if terminate && self.terminate_round.is_none() {
                    self.terminate_round = Some(round);
                }
                self.round_due_at = self.cycles + self.cfg.gvt_interval_cycles;
                // A matched round that started after termination proves the
                // links are drained: nobody processed during it, so nothing
                // is in flight any more. Publish, then Finish.
                let drained = was_terminated && self.terminate_round.is_some_and(|tr| round > tr);
                let pub_frame = Frame::Publish {
                    round,
                    gvt,
                    armed,
                    terminate,
                    recovering,
                };
                for p in 1..self.n {
                    self.send_frame(p, &pub_frame)?;
                }
                self.handle_frame(self.shard, pub_frame)?;
                if drained {
                    // Every data frame is proven delivered; run teardown on
                    // the clean transport so it converges under any fault
                    // plan.
                    for link in self.links.iter_mut().flatten() {
                        link.clear_faults();
                    }
                    for p in 1..self.n {
                        self.send_frame(p, &Frame::Finish)?;
                    }
                    self.handle_frame(self.shard, Frame::Finish)?;
                } else if self.terminated {
                    // Drain round: start immediately, no pacing needed.
                    self.round_due_at = self.cycles;
                }
                Ok(())
            }
        }
    }

    fn handle_publish(
        &mut self,
        round: u64,
        gvt: u64,
        armed: bool,
        terminate: bool,
        recovering: bool,
    ) -> Result<(), DistError> {
        if round < self.min_valid_round {
            return Ok(()); // stale: predates a recovery point
        }
        self.publishes_seen += 1;
        // The scripted kill dies on *receipt* of the fatal publish, before
        // applying it — deterministic in protocol progress, not wall clock.
        if self.cfg.kill_at.is_some_and(|at| self.publishes_seen >= at)
            && self.phase == Phase::Running
        {
            if !self.cfg.kill_silent {
                if let Some(abort) = &self.abort {
                    abort.store(true, Ordering::Relaxed);
                }
            }
            return Err(DistError::Killed { shard: self.shard });
        }
        self.last_liveness = Instant::now();
        if recovering {
            // The floor is re-published while a restored shard re-executes
            // below it. A survivor already sits at (or, restored, below)
            // the floor: keep counting rounds but skip adoption, fossil
            // collection, parking, and cuts until a normal publish.
            return Ok(());
        }
        if gvt < self.gvt {
            return Err(self.protocol_err(format!("published GVT regressed: {gvt} < {}", self.gvt)));
        }
        // First normal publish after a recovery: the matched round proves
        // nothing the restored peers re-sent is still in flight.
        if self.replaying_from.iter().any(|&r| r) {
            self.replaying_from.iter_mut().for_each(|r| *r = false);
            self.recovery_floor = 0;
        }
        self.gvt = gvt;
        // The round is closed: admission resumes against the new floor.
        self.cut_open = false;
        self.raise_ingest_floor(gvt);
        // Trace mapping for the publish side of a round: GVT adoption +
        // fossil collection is Phase B, the checkpoint cut + park/unpark
        // decision is Aware, and the round-snapshot bookkeeping is End.
        let trace = self.tracer.enabled();
        let mut ph = if trace { self.now_ns() } else { 0 };
        let vt = VirtualTime::from_ticks(gvt);
        self.engine.fossil_collect(vt);
        if trace {
            let now = self.now_ns();
            self.tracer.span(EventKind::GvtB, ph, now, round);
            ph = now;
        }
        if armed && self.phase == Phase::Running {
            // Every white of this round was delivered before the publish,
            // and every red is above the cut's minima — the engine sits
            // exactly on a consistent global cut at `gvt`.
            let cw0 = if trace { self.now_ns() } else { 0 };
            let (lps, events) = self.engine.snapshot_at_gvt(vt);
            let part = Frame::CutPart {
                round,
                shard: self.shard as u64,
                lps,
                events,
            };
            if self.shard == 0 {
                self.handle_frame(0, part)?;
            } else {
                self.send_frame(0, &part)?;
            }
            if trace {
                self.tracer
                    .span(EventKind::CheckpointWrite, cw0, self.now_ns(), round);
            }
            // Recovery restores from one of the two newest cuts: sends
            // below the previous armed cut can never need replaying again.
            let keep_from = self.prev_armed_gvt;
            self.prune_send_logs(keep_from);
            self.prev_armed_gvt = gvt;
        }
        if terminate {
            self.phase = Phase::Draining;
        } else if self.phase == Phase::Running {
            // The GVT publish is the demand-driven scheduling point: a
            // shard with no live work parks until an event re-creates
            // demand.
            let demand = self.engine.has_live_pending();
            if !demand && !self.parked {
                self.park_shard();
            } else if demand && self.parked {
                self.unpark_shard();
            }
        }
        if trace {
            let now = self.now_ns();
            self.tracer.span(EventKind::GvtAware, ph, now, round);
            ph = now;
            let ing = self
                .ingest
                .as_ref()
                .map(|g| {
                    let s = g.stats();
                    (s.admitted, s.rejected, s.shed, s.busy)
                })
                .unwrap_or((0, 0, 0, 0));
            let stats = self.engine.stats();
            self.tel.record_round(RoundTotals {
                round,
                gvt_ticks: gvt,
                ts_ns: now,
                committed: stats.committed,
                processed: stats.processed,
                rolled_back: stats.rolled_back,
                active_threads: if self.parked { 0 } else { 1 },
                members: self.n as u64,
                lvt_ticks: vec![self.engine.local_min().ticks()],
                queue_depths: vec![self.engine.pending_len()],
                ingest: ing,
            });
            let (pa, prj, psh, pb) = self.ingest_prev;
            for (kind, d) in [
                (EventKind::IngestAdmit, ing.0.saturating_sub(pa)),
                (EventKind::IngestReject, ing.1.saturating_sub(prj)),
                (EventKind::IngestShed, ing.2.saturating_sub(psh)),
                (EventKind::IngestBusy, ing.3.saturating_sub(pb)),
            ] {
                if d > 0 {
                    self.tracer.instant(kind, now, d);
                }
            }
            self.ingest_prev = ing;
            self.tracer
                .span(EventKind::GvtEnd, ph, self.now_ns(), round);
        }
        Ok(())
    }

    fn handle_cut_part(
        &mut self,
        round: u64,
        shard: usize,
        lps: Vec<LpCheckpoint<M::State>>,
        events: Vec<Event<M::Payload>>,
    ) -> Result<(), DistError> {
        if round < self.min_valid_round {
            return Ok(()); // stale: predates a recovery point
        }
        if self.coord.is_none() {
            return Err(self.protocol_err("CutPart received by non-coordinator"));
        }
        match self.cut_round {
            Some((r, _)) if r == round => {}
            // A straggler part of an older, abandoned cut: drop it rather
            // than clobbering the assembly in progress.
            Some((r, _)) if r > round => return Ok(()),
            _ if self.last_cut_done.is_some_and(|r| round <= r) => return Ok(()),
            _ => {
                self.cut_round = Some((round, self.gvt));
                self.cut_parts = vec![None; self.n];
            }
        }
        if self.cut_parts[shard].replace((lps, events)).is_some() {
            return Err(
                self.protocol_err(format!("shard {shard} sent two CutParts for round {round}"))
            );
        }
        if self.cut_parts.iter().all(|p| p.is_some()) {
            let (r, gvt_ticks) = self
                .cut_round
                .take()
                .ok_or_else(|| self.protocol_err("cut assembly completed with no cut open"))?;
            self.last_cut_done = Some(r);
            let parts = std::mem::take(&mut self.cut_parts)
                .into_iter()
                .flatten()
                .collect();
            let rounds = match self.coord.as_ref() {
                Some(c) => c.rounds_done,
                None => return Err(self.protocol_err("cut assembly on a non-coordinator")),
            };
            let ck = Checkpoint::assemble(
                VirtualTime::from_ticks(gvt_ticks),
                rounds,
                self.flat_map.clone(),
                parts,
                None,
            )
            .map_err(|e| self.protocol_err(format!("inconsistent cut: {e}")))?;
            self.cut_parts = vec![None; self.n];
            if let Some(slot) = &self.ckpt_slot {
                // Poison-survivable: a recovered supervisor still needs the
                // newest cut even if an earlier attempt died mid-lock.
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(ck);
            }
            // Scripted membership changes land exactly on an assembled cut:
            // the supervisor rebuilds the cluster from this checkpoint.
            if let Some(action) = self.due_reshape() {
                if let Some(abort) = &self.abort {
                    abort.store(true, Ordering::Relaxed);
                }
                return Err(DistError::Reshape { action });
            }
        }
        Ok(())
    }

    /// Coordinator: is a scripted join/leave due (by GVT publish count)?
    fn due_reshape(&self) -> Option<ReshapeAction> {
        if self.cfg.join_at.is_some_and(|at| self.publishes_seen >= at) {
            return Some(ReshapeAction::Join);
        }
        if let Some((s, at)) = self.cfg.leave_at {
            if self.publishes_seen >= at {
                return Some(ReshapeAction::Leave(s));
            }
        }
        None
    }

    fn handle_finish(&mut self) -> Result<(), DistError> {
        if self.phase != Phase::Draining {
            return Err(self.protocol_err(format!("Finish in phase {:?}", self.phase)));
        }
        for link in self.links.iter_mut().flatten() {
            link.clear_faults();
        }
        // The run is over: refuse further submissions, fail queued ones —
        // and the orphaned forward slots — with `Closed`.
        if let Some(g) = &self.ingest {
            g.close();
        }
        for (_, slot) in self.forward_slots.drain() {
            if let ReplySlot::Local(f) = slot {
                f(IngestReply::Closed);
            }
        }
        self.engine.finalize();
        // Forward collected telemetry ahead of `Done`: the in-order link
        // guarantees the coordinator merges it before assembling the
        // outcome. A parked shard's open episode closes here.
        if self.tel.enabled() {
            if self.parked {
                self.unpark_shard();
            }
            let tracer = std::mem::replace(&mut self.tracer, Tracer::disabled());
            self.tel.deposit(tracer);
            let data = self.tel.take();
            let tf = Frame::Telemetry {
                shard: self.shard as u64,
                sent_at_ns: self.now_ns(),
                data,
            };
            if self.shard == 0 {
                self.handle_frame(0, tf)?;
            } else {
                self.send_frame(0, &tf)?;
            }
        }
        let done = Frame::Done {
            shard: self.shard as u64,
            stats: self.engine.stats().clone(),
            digests: self.engine.state_digests(),
            pending_digest: self.engine.pending_digest(),
            parked: self.parked_episodes,
        };
        self.phase = Phase::Flushing;
        self.flush_left = 16;
        if self.shard == 0 {
            self.handle_frame(0, done)
        } else {
            self.send_frame(0, &done)
        }
    }

    /// Coordinator: merge a shard's forwarded telemetry onto the local
    /// clock, offset-estimated as `now - sent_at_ns` (the forwarding
    /// frame's one-way latency is assumed small against the trace span).
    fn handle_telemetry(
        &mut self,
        shard: u64,
        sent_at_ns: u64,
        data: TelemetryData,
    ) -> Result<(), DistError> {
        if self.coord.is_none() {
            return Err(self.protocol_err("Telemetry received by non-coordinator"));
        }
        let offset_ns = self.now_ns() as i64 - sent_at_ns as i64;
        self.tel_merged.merge_shard(data, shard, offset_ns);
        Ok(())
    }

    fn handle_done(&mut self, shard: usize, d: DoneData) -> Result<(), DistError> {
        let Some(coord) = self.coord.as_ref() else {
            return Err(self.protocol_err("Done received by non-coordinator"));
        };
        if self.dones[shard].replace(d).is_some() {
            return Err(self.protocol_err(format!("shard {shard} reported Done twice")));
        }
        if self.dones.iter().all(|d| d.is_some()) {
            let mut totals = ThreadStats::default();
            let mut state_digests = Vec::new();
            let mut pending_digest = 0u64;
            let mut max_parked = 0u64;
            for d in self.dones.iter().flatten() {
                totals.merge(&d.stats);
                state_digests.extend(d.digests.iter().copied());
                pending_digest ^= d.pending_digest;
                max_parked = max_parked.max(d.parked);
            }
            state_digests.sort_by_key(|(lp, _)| *lp);
            let (gvt_rounds, gvt, regressions) = (coord.rounds_done, coord.gvt, coord.regressions);
            self.outcome = Some(NodeOutcome {
                totals,
                state_digests,
                pending_digest,
                gvt_rounds,
                gvt,
                regressions,
                max_parked,
                telemetry: self
                    .tel
                    .enabled()
                    .then(|| std::mem::take(&mut self.tel_merged)),
            });
        }
        Ok(())
    }

    /// Threaded main loop: step until finished, parking on the inbox when
    /// idle and enforcing the GVT-liveness watchdog.
    pub fn run(&mut self) -> Result<(), DistError> {
        self.last_liveness = Instant::now();
        // Fresh leases: supervisor orchestration (recovery) between runs
        // must not count as peer silence.
        self.hb_last_heard = vec![Instant::now(); self.n];
        self.last_hb_sent = Instant::now();
        loop {
            if let Some(limit) = self.cfg.watchdog {
                if self.last_liveness.elapsed() > limit {
                    // When tracing is on, stamp the stall report with the
                    // last round snapshot — the dist-rt analogue of the
                    // thread runtimes' `StallDump::last_round`.
                    let last_round = self
                        .tel
                        .last_round()
                        .map(|r| format!(", last round {} at gvt={}", r.round, r.gvt_ticks))
                        .unwrap_or_default();
                    return Err(DistError::Stalled {
                        shard: self.shard,
                        detail: format!(
                            "no GVT liveness for {:.1}s (gvt={}, phase {:?}{last_round})",
                            limit.as_secs_f64(),
                            self.gvt,
                            self.phase
                        ),
                    });
                }
            }
            match self.step()? {
                StepStatus::Finished => return Ok(()),
                StepStatus::Progress => {}
                StepStatus::Idle => {
                    // Park briefly: woken by any inbound packet. The short
                    // coordinator timeout keeps round pacing alive.
                    let wait = if self.coord.is_some() {
                        Duration::from_micros(200)
                    } else {
                        Duration::from_millis(2)
                    };
                    self.inbox.wait_nonempty(wait);
                }
            }
        }
    }
}
