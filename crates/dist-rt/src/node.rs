//! One shard of the distributed runtime.
//!
//! A [`ShardNode`] owns a [`ThreadEngine`] over its slice of LPs and a
//! [`ReliableLink`] per peer. Its [`ShardNode::step`] is one cycle of the
//! main loop — drain the inbox, drive GVT rounds (coordinator only),
//! process a batch, pump the links — and is public so the deterministic
//! [`crate::launcher::SteppedCluster`] can interleave shards round-robin.
//! [`ShardNode::run`] wraps `step` with inbox parking and a wall-clock
//! GVT-liveness watchdog for real (threaded / multi-process) runs.
//!
//! ## Demand-driven shard throttling
//!
//! On every GVT publish the node re-evaluates demand: a shard whose engine
//! holds no live pending work parks itself — it stops taking batches (and,
//! under [`ShardNode::run`], blocks on its inbox) until an inbound event
//! re-creates demand. This is the paper's demand-driven deactivation
//! applied at shard granularity: quiet inbound links and an empty pending
//! set mean the shard consumes no CPU until a remote event arrives.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pdes_core::{
    Checkpoint, EngineConfig, Event, LpCheckpoint, LpId, LpMap, Model, Msg, Outbound, ThreadEngine,
    ThreadStats, VirtualTime,
};
use telemetry::{EventKind, RoundTotals, Telemetry, TelemetryConfig, TelemetryData, Tracer};

use crate::gvt::{Coordinator, GvtTracker, RoundClosure, ShardReport};
use crate::link::{Inbox, ReliableLink};
use crate::proto::Frame;
use crate::wire::{self, WireError};

/// Why a distributed run stopped before producing a result.
#[derive(Debug)]
pub enum DistError {
    /// Transport failure (socket error, peer hangup mid-run).
    Io(std::io::Error),
    /// Frame/packet decoding failure.
    Wire(WireError),
    /// Protocol invariant violated — includes GVT overshoot (a delivered
    /// message below the published GVT), the one error that must never be
    /// silent.
    Protocol { shard: usize, detail: String },
    /// The GVT-liveness watchdog expired: no round completed in time.
    Stalled { shard: usize, detail: String },
    /// Scripted fault: this shard was killed at its programmed cycle.
    Killed { shard: usize },
    /// Another shard in the cohort failed; this one aborted cleanly.
    Aborted { shard: usize },
    /// Mesh setup gave up: a peer never accepted/connected in time.
    ConnectTimeout { shard: usize, detail: String },
    /// The recovery supervisor ran out of attempts.
    RecoveryExhausted { attempts: u32, last: String },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "link i/o error: {e}"),
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::Protocol { shard, detail } => {
                write!(f, "protocol violation on shard {shard}: {detail}")
            }
            DistError::Stalled { shard, detail } => {
                write!(f, "shard {shard} stalled: {detail}")
            }
            DistError::Killed { shard } => write!(f, "shard {shard} killed (scripted fault)"),
            DistError::Aborted { shard } => write!(f, "shard {shard} aborted"),
            DistError::ConnectTimeout { shard, detail } => {
                write!(f, "shard {shard} mesh setup timed out: {detail}")
            }
            DistError::RecoveryExhausted { attempts, last } => {
                write!(
                    f,
                    "recovery exhausted after {attempts} attempts; last error: {last}"
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

/// Lifecycle phase of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// Normal simulation: batches, GVT rounds, checkpoints.
    Running,
    /// `Publish{terminate}` seen: no more batches, but keep pumping and
    /// delivering until the coordinator proves the links drained.
    Draining,
    /// `Finish` seen, engine finalized, `Done` sent: flush remaining acks.
    Flushing,
    /// All done.
    Done,
}

/// What one [`ShardNode::step`] accomplished (parking hint for `run`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// Frames handled or events processed — keep going.
    Progress,
    /// Nothing to do this cycle — safe to block on the inbox briefly.
    Idle,
    /// The node's role in the run is complete.
    Finished,
}

/// A worker's final contribution, also assembled by the coordinator.
#[derive(Debug, Clone)]
struct DoneData {
    stats: ThreadStats,
    digests: Vec<(LpId, u64)>,
    pending_digest: u64,
    parked: u64,
}

/// The coordinator's assembled outcome of a whole distributed run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Per-shard stats merged into totals.
    pub totals: ThreadStats,
    /// Final per-LP state digests, ascending by LP.
    pub state_digests: Vec<(LpId, u64)>,
    /// XOR-fold of per-shard pending digests.
    pub pending_digest: u64,
    /// GVT rounds completed.
    pub gvt_rounds: u64,
    /// Final published GVT (ticks).
    pub gvt: u64,
    /// Raw-minimum regressions clamped by the coordinator (should be 0).
    pub regressions: u64,
    /// Maximum shards simultaneously parked by demand throttling (lower
    /// bound: folded from per-shard episode counts).
    pub max_parked: u64,
    /// Merged telemetry from every shard (present when tracing was on),
    /// mapped onto the coordinator's clock.
    pub telemetry: Option<TelemetryData>,
}

/// Tuning knobs a node needs beyond the engine's own [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Cycles between GVT round starts (coordinator pacing).
    pub gvt_interval_cycles: u64,
    /// Cycles between wave re-polls within a round.
    pub wave_interval_cycles: u64,
    /// Take a checkpoint cut every this many GVT rounds (0 = never).
    pub ckpt_every_rounds: u64,
    /// Wall-clock GVT-liveness watchdog for [`ShardNode::run`].
    pub watchdog: Option<Duration>,
    /// Scripted fault: die upon observing the `n`th GVT publish. Counted in
    /// protocol progress, not step cycles, so the kill lands at the same
    /// point of the simulation regardless of host speed or scheduling.
    pub kill_at: Option<u64>,
    /// Live tracing / round-snapshot collection (off by default).
    pub telemetry: TelemetryConfig,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            gvt_interval_cycles: 32,
            wave_interval_cycles: 4,
            ckpt_every_rounds: 0,
            watchdog: Some(Duration::from_secs(10)),
            kill_at: None,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// Shared slot the coordinator publishes assembled checkpoints into; the
/// launcher's recovery path restores every shard from it.
pub type CkptSlot<M> = Arc<Mutex<Option<Checkpoint<<M as Model>::State, <M as Model>::Payload>>>>;

/// One shard's contribution to a checkpoint cut: its LP checkpoints plus
/// the in-flight events it owns at the cut.
type ShardCut<M> = (
    Vec<LpCheckpoint<<M as Model>::State>>,
    Vec<Event<<M as Model>::Payload>>,
);

/// One shard: engine + links + GVT tracker (+ coordinator on shard 0).
pub struct ShardNode<M: Model> {
    pub shard: usize,
    n: usize,
    engine: ThreadEngine<M>,
    /// `links[p]` is the reliable link to shard `p` (`None` for self).
    links: Vec<Option<ReliableLink>>,
    inbox: Arc<Inbox>,
    tracker: GvtTracker,
    coord: Option<Coordinator>,
    cfg: NodeConfig,
    end_ticks: u64,
    /// Last published GVT (ticks) as seen by this node.
    gvt: u64,
    cycles: u64,
    /// GVT publishes this node has observed (scripted-kill clock).
    publishes_seen: u64,
    phase: Phase,
    /// Demand throttle: parked shards take no batches.
    parked: bool,
    parked_episodes: u64,
    /// Set while a `Publish{terminate}` has been seen by the coordinator.
    terminated: bool,
    /// Coordinator: round the terminate was published in.
    terminate_round: Option<u64>,
    // Round pacing (cycle counters, deterministic in stepped mode).
    round_due_at: u64,
    wave_due_at: Option<u64>,
    pending_wave: Option<(u64, u64)>, // (round, wave) to broadcast when due
    // Coordinator: checkpoint assembly.
    cut_parts: Vec<Option<ShardCut<M>>>,
    cut_round: Option<(u64, u64)>, // (round, gvt_ticks)
    last_cut_done: Option<u64>,
    ckpt_slot: Option<CkptSlot<M>>,
    flat_map: LpMap,
    // Coordinator: done collection.
    dones: Vec<Option<DoneData>>,
    outcome: Option<NodeOutcome>,
    /// Cohort-wide abort flag (set by a dying shard, checked by all).
    abort: Option<Arc<AtomicBool>>,
    // Watchdog.
    last_liveness: Instant,
    /// Cycles of ack-flushing after `Done` before calling it quits.
    flush_left: u64,
    outbox: Vec<Outbound<M::Payload>>,
    // Telemetry: per-shard registry + this node's (single) tracer.
    tel: Arc<Telemetry>,
    tracer: Tracer,
    /// Monotonic origin of this node's trace timestamps.
    t0: Instant,
    /// Wall time the current park episode began (trace only).
    park_t0: u64,
    /// Per-link retransmit counts already traced.
    retx_seen: Vec<u64>,
    /// Coordinator: telemetry merged from every shard's forward.
    tel_merged: TelemetryData,
}

impl<M: Model> ShardNode<M> {
    /// Build one shard node. `flat_map` maps every LP to its owning shard
    /// (`SimThreadId(shard)`); `links[p]` must be `Some` exactly for
    /// `p != shard`. Shard 0 becomes the coordinator and needs `ckpt_slot`
    /// when checkpoints are armed.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: Arc<M>,
        flat_map: LpMap,
        shard: usize,
        num_shards: usize,
        ecfg: &EngineConfig,
        ncfg: NodeConfig,
        links: Vec<Option<ReliableLink>>,
        inbox: Arc<Inbox>,
        ckpt_slot: Option<CkptSlot<M>>,
        abort: Option<Arc<AtomicBool>>,
    ) -> ShardNode<M> {
        assert_eq!(links.len(), num_shards);
        assert!(links[shard].is_none(), "no link to self");
        let engine = ThreadEngine::new(
            Arc::clone(&model),
            flat_map.clone(),
            pdes_core::SimThreadId(shard as u32),
            ecfg,
        );
        let tel = Telemetry::new(ncfg.telemetry.clone());
        let tracer = tel.tracer(0);
        ShardNode {
            shard,
            n: num_shards,
            engine,
            links,
            inbox,
            tracker: GvtTracker::new(num_shards),
            coord: (shard == 0).then(|| Coordinator::new(num_shards)),
            cfg: ncfg,
            end_ticks: ecfg.end_time.ticks(),
            gvt: 0,
            cycles: 0,
            publishes_seen: 0,
            phase: Phase::Running,
            parked: false,
            parked_episodes: 0,
            terminated: false,
            terminate_round: None,
            round_due_at: 0,
            wave_due_at: None,
            pending_wave: None,
            cut_parts: vec![None; num_shards],
            cut_round: None,
            last_cut_done: None,
            ckpt_slot,
            flat_map,
            dones: vec![None; num_shards],
            outcome: None,
            abort,
            last_liveness: Instant::now(),
            flush_left: 0,
            outbox: Vec::new(),
            tel,
            tracer,
            t0: Instant::now(),
            park_t0: 0,
            retx_seen: vec![0; num_shards],
            tel_merged: TelemetryData::default(),
        }
    }

    /// Nanoseconds on this node's own monotonic trace clock.
    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Park the shard (demand throttling), tracing the episode start.
    fn park_shard(&mut self) {
        self.parked = true;
        self.parked_episodes += 1;
        if self.tracer.enabled() {
            self.park_t0 = self.now_ns();
        }
    }

    /// Un-park the shard and close the traced park span.
    fn unpark_shard(&mut self) {
        self.parked = false;
        if self.tracer.enabled() {
            let now = self.now_ns();
            self.tracer
                .span(EventKind::Park, self.park_t0, now, self.shard as u64);
            self.tracer
                .instant(EventKind::Unpark, now, self.shard as u64);
        }
    }

    /// Published GVT (ticks) as seen by this node.
    pub fn gvt(&self) -> u64 {
        self.gvt
    }

    /// The engine's pending minimum (ticks) — for invariant checks.
    pub fn local_min_ticks(&self) -> u64 {
        self.engine.local_min().ticks()
    }

    /// `true` once the node's role in the run is complete.
    pub fn finished(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The coordinator's assembled run outcome (present after it finishes).
    pub fn take_outcome(&mut self) -> Option<NodeOutcome> {
        self.outcome.take()
    }

    /// Restore this shard from a checkpointed global cut (recovery path).
    /// The engine filters `ck.lps` / `ck.events` by ownership itself.
    pub fn restore(&mut self, ck: &Checkpoint<M::State, M::Payload>) {
        self.engine.restore(&ck.lps, &ck.events, ck.gvt);
        self.gvt = ck.gvt.ticks();
        if let Some(c) = &mut self.coord {
            c.gvt = ck.gvt.ticks();
            c.rounds_done = ck.gvt_rounds;
        }
        self.round_due_at = self.cfg.gvt_interval_cycles;
    }

    /// Route this shard's initial events (fresh starts only — a restored
    /// run's events live in the checkpoint).
    pub fn bootstrap(&mut self) -> Result<(), DistError> {
        let init = self.engine.take_init_events();
        for (tid, msg) in init {
            let dst = tid.index();
            if dst == self.shard {
                let mut outbox = std::mem::take(&mut self.outbox);
                self.engine.deliver(msg, &mut outbox);
                self.outbox = outbox;
            } else {
                self.send_sim(dst, msg)?;
            }
        }
        self.route_outbox()
    }

    fn send_frame(
        &mut self,
        peer: usize,
        frame: &Frame<M::State, M::Payload>,
    ) -> Result<(), DistError> {
        let bytes = wire::to_bytes(frame);
        let link = self.links[peer]
            .as_mut()
            .unwrap_or_else(|| panic!("no link {} -> {peer}", self.shard));
        match link.send(&bytes) {
            Ok(()) => Ok(()),
            // A broken pipe while flushing final acks is not an error: the
            // peer already finished and hung up.
            Err(_) if self.phase >= Phase::Flushing => Ok(()),
            Err(e) => Err(DistError::Io(e)),
        }
    }

    fn send_sim(&mut self, peer: usize, msg: Msg<M::Payload>) -> Result<(), DistError> {
        let tag = self.tracker.note_sent(peer);
        self.send_frame(peer, &Frame::Sim { tag, msg })
    }

    /// Drain the engine outbox: color and ship remote messages. Send order
    /// MUST be preserved — an anti-message overtaking the re-send of its
    /// twin (or vice versa) would insert a duplicate key at the receiver.
    fn route_outbox(&mut self) -> Result<(), DistError> {
        let out = std::mem::take(&mut self.outbox);
        for (tid, msg) in out {
            let dst = tid.index();
            debug_assert_ne!(dst, self.shard, "engine outbox never holds local msgs");
            self.send_sim(dst, msg)?;
        }
        Ok(())
    }

    fn protocol_err(&self, detail: impl Into<String>) -> DistError {
        DistError::Protocol {
            shard: self.shard,
            detail: detail.into(),
        }
    }

    /// One main-loop cycle.
    pub fn step(&mut self) -> Result<StepStatus, DistError> {
        if self.phase == Phase::Done {
            return Ok(StepStatus::Finished);
        }
        if let Some(abort) = &self.abort {
            if abort.load(Ordering::Relaxed)
                && self.cfg.kill_at.is_none_or(|at| self.publishes_seen < at)
            {
                return Err(DistError::Aborted { shard: self.shard });
            }
        }
        self.cycles += 1;

        let mut progress = false;

        // 1. Drain the inbox through the reliable links into frame handling.
        for (peer, bytes) in self.inbox.drain() {
            progress = true;
            if bytes.is_empty() {
                // Link-closed sentinel from a TCP reader.
                if self.phase >= Phase::Draining {
                    continue;
                }
                return Err(DistError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    format!("shard {peer} hung up mid-run"),
                )));
            }
            if self.links[peer].is_none() {
                return Err(self.protocol_err(format!("packet from unlinked peer {peer}")));
            }
            let link = self.links[peer].as_mut().expect("checked above");
            let frames = link.on_packet(&bytes)?;
            for fb in frames {
                let frame: Frame<M::State, M::Payload> = wire::from_bytes(&fb)?;
                self.handle_frame(peer, frame)?;
            }
        }

        // 2. Coordinator: drive rounds.
        self.drive_rounds()?;

        // 3. Simulate.
        if self.phase == Phase::Running && !self.parked {
            let trace = self.tracer.enabled();
            let b0 = if trace { self.now_ns() } else { 0 };
            let rb0 = self.engine.stats().rolled_back;
            let mut outbox = std::mem::take(&mut self.outbox);
            let out = self.engine.process_batch(self.engine_batch(), &mut outbox);
            self.outbox = outbox;
            self.route_outbox()?;
            if out.processed > 0 {
                progress = true;
                if trace {
                    let now = self.now_ns();
                    self.tracer
                        .span(EventKind::EventBatch, b0, now, out.processed as u64);
                    let rb = self.engine.stats().rolled_back;
                    if rb > rb0 {
                        self.tracer.instant(EventKind::Rollback, now, rb - rb0);
                    }
                }
            }
            // Demand check between publishes: new local work un-parks; a
            // shard that just went empty waits for the next publish to park
            // (publish is the scheduling decision point).
        } else if self.phase == Phase::Running && self.parked && self.engine.has_live_pending() {
            self.unpark_shard();
            progress = true;
        }

        // 4. Pump every link (acks, retransmits, delayed releases).
        for p in 0..self.n {
            let mut retx = None;
            if let Some(link) = self.links[p].as_mut() {
                match link.pump() {
                    Ok(()) => {}
                    Err(_) if self.phase >= Phase::Flushing => {}
                    Err(e) => return Err(DistError::Io(e)),
                }
                retx = Some(link.retransmits);
            }
            if let Some(rx) = retx {
                if rx > self.retx_seen[p] && self.tracer.enabled() {
                    // arg packs (peer, episodes-since-last-trace).
                    let delta = rx - self.retx_seen[p];
                    let now = self.now_ns();
                    self.tracer
                        .instant(EventKind::LinkRetransmit, now, ((p as u64) << 32) | delta);
                }
                self.retx_seen[p] = rx.max(self.retx_seen[p]);
            }
        }

        // 5. Flushing: stay until every outgoing frame is acked (the `Done`
        // must reach the coordinator; the coordinator must collect all of
        // them), plus a short grace for reactive acks to peers.
        if self.phase == Phase::Flushing {
            self.flush_left = self.flush_left.saturating_sub(1);
            let drained = self.links.iter().flatten().all(|l| l.drained());
            if drained && self.flush_left == 0 && (self.coord.is_none() || self.outcome.is_some()) {
                self.phase = Phase::Done;
                return Ok(StepStatus::Finished);
            }
            return Ok(StepStatus::Progress);
        }

        Ok(if progress {
            StepStatus::Progress
        } else {
            StepStatus::Idle
        })
    }

    fn engine_batch(&self) -> usize {
        // The engine already bounds optimism by gvt_hint + window; the batch
        // size only controls how often the node services its links.
        64
    }

    /// Coordinator-only: open rounds on schedule, re-poll waves when due.
    fn drive_rounds(&mut self) -> Result<(), DistError> {
        if self.coord.is_none() || self.phase > Phase::Draining {
            return Ok(());
        }
        // Broadcast a due wave re-poll.
        if let (Some((round, wave)), Some(due)) = (self.pending_wave, self.wave_due_at) {
            if self.cycles >= due {
                self.pending_wave = None;
                self.wave_due_at = None;
                self.broadcast_start(round, wave)?;
            }
        }
        let in_flight = self.coord.as_ref().expect("coordinator").round.is_some();
        if !in_flight && self.cycles >= self.round_due_at {
            let armed = self.phase == Phase::Running
                && self.cfg.ckpt_every_rounds > 0
                && (self.coord.as_ref().expect("coordinator").rounds_done + 1)
                    .is_multiple_of(self.cfg.ckpt_every_rounds);
            let round = self.coord.as_mut().expect("coordinator").start_round(armed);
            self.broadcast_start(round, 0)?;
        }
        Ok(())
    }

    fn broadcast_start(&mut self, round: u64, wave: u64) -> Result<(), DistError> {
        let armed = self.coord.as_ref().expect("coordinator").armed;
        let f = Frame::Start { round, wave, armed };
        for p in 0..self.n {
            if p != self.shard {
                self.send_frame(p, &f)?;
            }
        }
        // The coordinator is also a shard: handle its own Start inline.
        self.handle_frame(self.shard, f)
    }

    fn handle_frame(
        &mut self,
        peer: usize,
        frame: Frame<M::State, M::Payload>,
    ) -> Result<(), DistError> {
        match frame {
            Frame::Hello { .. } => Err(self.protocol_err("Hello inside the reliable stream")),
            Frame::Sim { tag, msg } => self.handle_sim(peer, tag, msg),
            Frame::Start { round, wave, .. } => self.handle_start(round, wave),
            Frame::Report {
                round,
                wave,
                shard,
                pending_min,
                late_min,
                white_sent,
                white_recvd,
            } => self.handle_report(
                round,
                shard as usize,
                ShardReport {
                    wave,
                    pending_min,
                    late_min,
                    white_sent,
                    white_recvd,
                },
            ),
            Frame::Publish {
                round,
                gvt,
                armed,
                terminate,
            } => self.handle_publish(round, gvt, armed, terminate),
            Frame::Finish => self.handle_finish(),
            Frame::CutPart {
                round,
                shard,
                lps,
                events,
            } => self.handle_cut_part(round, shard as usize, lps, events),
            Frame::Done {
                shard,
                stats,
                digests,
                pending_digest,
                parked,
            } => self.handle_done(
                shard as usize,
                DoneData {
                    stats,
                    digests,
                    pending_digest,
                    parked,
                },
            ),
            Frame::Telemetry {
                shard,
                sent_at_ns,
                data,
            } => self.handle_telemetry(shard, sent_at_ns, data),
        }
    }

    fn handle_sim(&mut self, peer: usize, tag: u64, msg: Msg<M::Payload>) -> Result<(), DistError> {
        let recv_ticks = msg.recv_time().ticks();
        self.tracker.note_recvd(peer, tag, recv_ticks);
        match self.phase {
            Phase::Running | Phase::Draining => {
                // THE safety check: a message below the published GVT means
                // the distributed GVT overshot the true global minimum.
                if recv_ticks < self.gvt {
                    return Err(self.protocol_err(format!(
                        "GVT overshoot: message at t={recv_ticks} below published gvt={}",
                        self.gvt
                    )));
                }
                if self.parked {
                    // Inbound demand re-activates a parked shard.
                    self.parked = false;
                }
                let mut outbox = std::mem::take(&mut self.outbox);
                self.engine.deliver(msg, &mut outbox);
                self.outbox = outbox;
                self.route_outbox()
            }
            // After finalize, nothing may touch the engine; the drain round
            // proved no such message can exist.
            Phase::Flushing | Phase::Done => {
                Err(self.protocol_err(format!("Sim frame from shard {peer} after Finish")))
            }
        }
    }

    fn handle_start(&mut self, round: u64, wave: u64) -> Result<(), DistError> {
        // Round traffic counts as liveness: long multi-wave rounds must not
        // trip a participant's watchdog.
        self.last_liveness = Instant::now();
        let trace = self.tracer.enabled();
        let ph0 = if trace { self.now_ns() } else { 0 };
        if wave == 0 {
            self.tracker
                .take_cut(round, self.engine.local_min().ticks());
        }
        let (pending_min, late_min, white_sent, white_recvd) = self.tracker.report();
        let rep = Frame::Report {
            round,
            wave,
            shard: self.shard as u64,
            pending_min,
            late_min,
            white_sent,
            white_recvd,
        };
        // Trace mapping: the cut + report build is Phase A, the report
        // dispatch is Send-A. On the coordinator the report is self-handled
        // (and may close the round inline), so its Send-A is a point span.
        let t1 = if trace {
            let t1 = self.now_ns();
            self.tracer.span(EventKind::GvtA, ph0, t1, round);
            t1
        } else {
            0
        };
        if self.shard == 0 {
            if trace {
                self.tracer.span(EventKind::GvtSendA, t1, t1, round);
            }
            self.handle_frame(0, rep)
        } else {
            let r = self.send_frame(0, &rep);
            if trace {
                self.tracer
                    .span(EventKind::GvtSendA, t1, self.now_ns(), round);
            }
            r
        }
    }

    fn handle_report(
        &mut self,
        round: u64,
        shard: usize,
        rep: ShardReport,
    ) -> Result<(), DistError> {
        let Some(coord) = self.coord.as_mut() else {
            return Err(self.protocol_err("Report received by non-coordinator"));
        };
        match coord.on_report(round, shard, rep) {
            RoundClosure::Pending => Ok(()),
            RoundClosure::NextWave(wave) => {
                // Pace the re-poll: give late whites a few cycles to land.
                self.pending_wave = Some((round, wave));
                self.wave_due_at = Some(self.cycles + self.cfg.wave_interval_cycles);
                Ok(())
            }
            RoundClosure::Publish { gvt } => {
                let armed = coord.armed;
                let was_terminated = self.terminated;
                let terminate = gvt >= self.end_ticks;
                self.terminated = self.terminated || terminate;
                if terminate && self.terminate_round.is_none() {
                    self.terminate_round = Some(round);
                }
                self.round_due_at = self.cycles + self.cfg.gvt_interval_cycles;
                // A matched round that started after termination proves the
                // links are drained: nobody processed during it, so nothing
                // is in flight any more. Publish, then Finish.
                let drained = was_terminated && self.terminate_round.is_some_and(|tr| round > tr);
                let pub_frame = Frame::Publish {
                    round,
                    gvt,
                    armed,
                    terminate,
                };
                for p in 1..self.n {
                    self.send_frame(p, &pub_frame)?;
                }
                self.handle_frame(self.shard, pub_frame)?;
                if drained {
                    // Every data frame is proven delivered; run teardown on
                    // the clean transport so it converges under any fault
                    // plan.
                    for link in self.links.iter_mut().flatten() {
                        link.clear_faults();
                    }
                    for p in 1..self.n {
                        self.send_frame(p, &Frame::Finish)?;
                    }
                    self.handle_frame(self.shard, Frame::Finish)?;
                } else if self.terminated {
                    // Drain round: start immediately, no pacing needed.
                    self.round_due_at = self.cycles;
                }
                Ok(())
            }
        }
    }

    fn handle_publish(
        &mut self,
        round: u64,
        gvt: u64,
        armed: bool,
        terminate: bool,
    ) -> Result<(), DistError> {
        if gvt < self.gvt {
            return Err(self.protocol_err(format!("published GVT regressed: {gvt} < {}", self.gvt)));
        }
        self.publishes_seen += 1;
        // The scripted kill dies on *receipt* of the fatal publish, before
        // applying it — deterministic in protocol progress, not wall clock.
        if self.cfg.kill_at.is_some_and(|at| self.publishes_seen >= at)
            && self.phase == Phase::Running
        {
            if let Some(abort) = &self.abort {
                abort.store(true, Ordering::Relaxed);
            }
            return Err(DistError::Killed { shard: self.shard });
        }
        self.gvt = gvt;
        self.last_liveness = Instant::now();
        // Trace mapping for the publish side of a round: GVT adoption +
        // fossil collection is Phase B, the checkpoint cut + park/unpark
        // decision is Aware, and the round-snapshot bookkeeping is End.
        let trace = self.tracer.enabled();
        let mut ph = if trace { self.now_ns() } else { 0 };
        let vt = VirtualTime::from_ticks(gvt);
        self.engine.fossil_collect(vt);
        if trace {
            let now = self.now_ns();
            self.tracer.span(EventKind::GvtB, ph, now, round);
            ph = now;
        }
        if armed && self.phase == Phase::Running {
            // Every white of this round was delivered before the publish,
            // and every red is above the cut's minima — the engine sits
            // exactly on a consistent global cut at `gvt`.
            let cw0 = if trace { self.now_ns() } else { 0 };
            let (lps, events) = self.engine.snapshot_at_gvt(vt);
            let part = Frame::CutPart {
                round,
                shard: self.shard as u64,
                lps,
                events,
            };
            if self.shard == 0 {
                self.handle_frame(0, part)?;
            } else {
                self.send_frame(0, &part)?;
            }
            if trace {
                self.tracer
                    .span(EventKind::CheckpointWrite, cw0, self.now_ns(), round);
            }
        }
        if terminate {
            self.phase = Phase::Draining;
        } else if self.phase == Phase::Running {
            // The GVT publish is the demand-driven scheduling point: a
            // shard with no live work parks until an event re-creates
            // demand.
            let demand = self.engine.has_live_pending();
            if !demand && !self.parked {
                self.park_shard();
            } else if demand && self.parked {
                self.unpark_shard();
            }
        }
        if trace {
            let now = self.now_ns();
            self.tracer.span(EventKind::GvtAware, ph, now, round);
            ph = now;
            let stats = self.engine.stats();
            self.tel.record_round(RoundTotals {
                round,
                gvt_ticks: gvt,
                ts_ns: now,
                committed: stats.committed,
                processed: stats.processed,
                rolled_back: stats.rolled_back,
                active_threads: if self.parked { 0 } else { 1 },
                lvt_ticks: vec![self.engine.local_min().ticks()],
                queue_depths: vec![self.engine.pending_len()],
            });
            self.tracer
                .span(EventKind::GvtEnd, ph, self.now_ns(), round);
        }
        Ok(())
    }

    fn handle_cut_part(
        &mut self,
        round: u64,
        shard: usize,
        lps: Vec<LpCheckpoint<M::State>>,
        events: Vec<Event<M::Payload>>,
    ) -> Result<(), DistError> {
        if self.coord.is_none() {
            return Err(self.protocol_err("CutPart received by non-coordinator"));
        }
        match self.cut_round {
            Some((r, _)) if r == round => {}
            // A straggler part of an older, abandoned cut: drop it rather
            // than clobbering the assembly in progress.
            Some((r, _)) if r > round => return Ok(()),
            _ if self.last_cut_done.is_some_and(|r| round <= r) => return Ok(()),
            _ => {
                self.cut_round = Some((round, self.gvt));
                self.cut_parts = vec![None; self.n];
            }
        }
        if self.cut_parts[shard].replace((lps, events)).is_some() {
            return Err(
                self.protocol_err(format!("shard {shard} sent two CutParts for round {round}"))
            );
        }
        if self.cut_parts.iter().all(|p| p.is_some()) {
            let (r, gvt_ticks) = self.cut_round.take().expect("cut in progress");
            self.last_cut_done = Some(r);
            let parts = std::mem::take(&mut self.cut_parts)
                .into_iter()
                .map(|p| p.expect("all parts present"))
                .collect();
            let rounds = self.coord.as_ref().expect("coordinator").rounds_done;
            let ck = Checkpoint::assemble(
                VirtualTime::from_ticks(gvt_ticks),
                rounds,
                self.flat_map.clone(),
                parts,
                None,
            )
            .map_err(|e| self.protocol_err(format!("inconsistent cut: {e}")))?;
            self.cut_parts = vec![None; self.n];
            if let Some(slot) = &self.ckpt_slot {
                *slot.lock().expect("ckpt slot poisoned") = Some(ck);
            }
        }
        Ok(())
    }

    fn handle_finish(&mut self) -> Result<(), DistError> {
        if self.phase != Phase::Draining {
            return Err(self.protocol_err(format!("Finish in phase {:?}", self.phase)));
        }
        for link in self.links.iter_mut().flatten() {
            link.clear_faults();
        }
        self.engine.finalize();
        // Forward collected telemetry ahead of `Done`: the in-order link
        // guarantees the coordinator merges it before assembling the
        // outcome. A parked shard's open episode closes here.
        if self.tel.enabled() {
            if self.parked {
                self.unpark_shard();
            }
            let tracer = std::mem::replace(&mut self.tracer, Tracer::disabled());
            self.tel.deposit(tracer);
            let data = self.tel.take();
            let tf = Frame::Telemetry {
                shard: self.shard as u64,
                sent_at_ns: self.now_ns(),
                data,
            };
            if self.shard == 0 {
                self.handle_frame(0, tf)?;
            } else {
                self.send_frame(0, &tf)?;
            }
        }
        let done = Frame::Done {
            shard: self.shard as u64,
            stats: self.engine.stats().clone(),
            digests: self.engine.state_digests(),
            pending_digest: self.engine.pending_digest(),
            parked: self.parked_episodes,
        };
        self.phase = Phase::Flushing;
        self.flush_left = 16;
        if self.shard == 0 {
            self.handle_frame(0, done)
        } else {
            self.send_frame(0, &done)
        }
    }

    /// Coordinator: merge a shard's forwarded telemetry onto the local
    /// clock, offset-estimated as `now - sent_at_ns` (the forwarding
    /// frame's one-way latency is assumed small against the trace span).
    fn handle_telemetry(
        &mut self,
        shard: u64,
        sent_at_ns: u64,
        data: TelemetryData,
    ) -> Result<(), DistError> {
        if self.coord.is_none() {
            return Err(self.protocol_err("Telemetry received by non-coordinator"));
        }
        let offset_ns = self.now_ns() as i64 - sent_at_ns as i64;
        self.tel_merged.merge_shard(data, shard, offset_ns);
        Ok(())
    }

    fn handle_done(&mut self, shard: usize, d: DoneData) -> Result<(), DistError> {
        let Some(coord) = self.coord.as_ref() else {
            return Err(self.protocol_err("Done received by non-coordinator"));
        };
        if self.dones[shard].replace(d).is_some() {
            return Err(self.protocol_err(format!("shard {shard} reported Done twice")));
        }
        if self.dones.iter().all(|d| d.is_some()) {
            let mut totals = ThreadStats::default();
            let mut state_digests = Vec::new();
            let mut pending_digest = 0u64;
            let mut max_parked = 0u64;
            for d in self.dones.iter().flatten() {
                totals.merge(&d.stats);
                state_digests.extend(d.digests.iter().copied());
                pending_digest ^= d.pending_digest;
                max_parked = max_parked.max(d.parked);
            }
            state_digests.sort_by_key(|(lp, _)| *lp);
            let (gvt_rounds, gvt, regressions) = (coord.rounds_done, coord.gvt, coord.regressions);
            self.outcome = Some(NodeOutcome {
                totals,
                state_digests,
                pending_digest,
                gvt_rounds,
                gvt,
                regressions,
                max_parked,
                telemetry: self
                    .tel
                    .enabled()
                    .then(|| std::mem::take(&mut self.tel_merged)),
            });
        }
        Ok(())
    }

    /// Threaded main loop: step until finished, parking on the inbox when
    /// idle and enforcing the GVT-liveness watchdog.
    pub fn run(&mut self) -> Result<(), DistError> {
        self.last_liveness = Instant::now();
        loop {
            if let Some(limit) = self.cfg.watchdog {
                if self.last_liveness.elapsed() > limit {
                    // When tracing is on, stamp the stall report with the
                    // last round snapshot — the dist-rt analogue of the
                    // thread runtimes' `StallDump::last_round`.
                    let last_round = self
                        .tel
                        .last_round()
                        .map(|r| format!(", last round {} at gvt={}", r.round, r.gvt_ticks))
                        .unwrap_or_default();
                    return Err(DistError::Stalled {
                        shard: self.shard,
                        detail: format!(
                            "no GVT liveness for {:.1}s (gvt={}, phase {:?}{last_round})",
                            limit.as_secs_f64(),
                            self.gvt,
                            self.phase
                        ),
                    });
                }
            }
            match self.step()? {
                StepStatus::Finished => return Ok(()),
                StepStatus::Progress => {}
                StepStatus::Idle => {
                    // Park briefly: woken by any inbound packet. The short
                    // coordinator timeout keeps round pacing alive.
                    let wait = if self.coord.is_some() {
                        Duration::from_micros(200)
                    } else {
                        Duration::from_millis(2)
                    };
                    self.inbox.wait_nonempty(wait);
                }
            }
        }
    }
}
