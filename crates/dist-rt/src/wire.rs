//! Compact binary wire format.
//!
//! Frames on the shard links carry serde-derived values (events,
//! anti-messages, GVT control traffic, checkpoint cuts). The vendored serde
//! reduces every `Serialize` type to a [`Value`] tree; this module encodes
//! that tree as a tagged binary stream — one tag byte per node, LEB128
//! varints for unsigned integers and lengths, zigzag varints for signed
//! integers, IEEE-754 bits little-endian for floats. The encoding is
//! canonical (no map-order or whitespace freedom), so identical values
//! produce identical bytes on every shard — a property the equivalence
//! digests rely on.
//!
//! On the socket each encoded value travels as one *frame*: a `u32`
//! little-endian byte length followed by the payload. A length cap rejects
//! corrupt prefixes before they turn into multi-gigabyte allocations.

use serde::{Deserialize, Serialize, Value};

/// Upper bound on a single frame's payload (checkpoint cuts of large runs
/// stay well under this; anything bigger is a corrupt length prefix).
pub const MAX_FRAME: usize = 256 << 20;

/// A malformed byte stream (truncated, bad tag, bad UTF-8, trailing bytes)
/// or a structurally valid value that does not match the expected type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_UINT: u8 = 3;
const TAG_INT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STRING: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| WireError("truncated varint".into()))?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError("varint longer than 10 bytes".into()))
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append the canonical encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::UInt(u) => {
            out.push(TAG_UINT);
            put_varint(out, *u);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            put_varint(out, zigzag(*i));
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            put_varint(out, fields.len() as u64);
            for (k, val) in fields {
                put_varint(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

fn get_len(buf: &[u8], pos: &mut usize, what: &str) -> Result<usize, WireError> {
    let n = get_varint(buf, pos)?;
    let n = usize::try_from(n).map_err(|_| WireError(format!("{what} length overflows")))?;
    // A length can never exceed the bytes that remain: this rejects corrupt
    // prefixes before any allocation is sized from them.
    if n > buf.len() - *pos {
        return Err(WireError(format!(
            "{what} length {n} exceeds remaining {} bytes",
            buf.len() - *pos
        )));
    }
    Ok(n)
}

fn get_str(buf: &[u8], pos: &mut usize, what: &str) -> Result<String, WireError> {
    let n = get_len(buf, pos, what)?;
    let s = std::str::from_utf8(&buf[*pos..*pos + n])
        .map_err(|e| WireError(format!("{what} is not UTF-8: {e}")))?
        .to_owned();
    *pos += n;
    Ok(s)
}

/// Decode one value starting at `pos`, advancing it.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, WireError> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| WireError("truncated value tag".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_UINT => Ok(Value::UInt(get_varint(buf, pos)?)),
        TAG_INT => Ok(Value::Int(unzigzag(get_varint(buf, pos)?))),
        TAG_FLOAT => {
            let end = *pos + 8;
            let bytes: [u8; 8] = buf
                .get(*pos..end)
                .ok_or_else(|| WireError("truncated float".into()))?
                .try_into()
                .expect("slice is 8 bytes");
            *pos = end;
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(bytes))))
        }
        TAG_STRING => Ok(Value::String(get_str(buf, pos, "string")?)),
        TAG_ARRAY => {
            let n = get_len(buf, pos, "array")?;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_value(buf, pos)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let n = get_len(buf, pos, "object")?;
            let mut fields = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let k = get_str(buf, pos, "object key")?;
                let v = decode_value(buf, pos)?;
                fields.push((k, v));
            }
            Ok(Value::Object(fields))
        }
        other => Err(WireError(format!("unknown value tag {other}"))),
    }
}

/// Serialize `t` to its canonical frame payload.
pub fn to_bytes<T: Serialize>(t: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_value(&t.to_value(), &mut out);
    out
}

/// Parse a frame payload back into `T`. Trailing bytes are an error — a
/// frame carries exactly one value.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, WireError> {
    let mut pos = 0;
    let v = decode_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(WireError(format!(
            "{} trailing bytes after value",
            bytes.len() - pos
        )));
    }
    T::from_value(&v).map_err(|e| WireError(format!("shape mismatch: {e}")))
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one length-prefixed frame. `Ok(None)` on a clean EOF at a frame
/// boundary; corrupt lengths and mid-frame EOFs are errors.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let mut bytes = Vec::new();
        encode_value(v, &mut bytes);
        let mut pos = 0;
        let back = decode_value(&bytes, &mut pos).expect("decode");
        assert_eq!(pos, bytes.len());
        assert_eq!(&back, v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Value::Null);
        round_trip(&Value::Bool(true));
        round_trip(&Value::Bool(false));
        for u in [0u64, 1, 127, 128, 300, u64::MAX] {
            round_trip(&Value::UInt(u));
        }
        for i in [0i64, -1, 1, i64::MIN, i64::MAX] {
            round_trip(&Value::Int(i));
        }
        for f in [0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            round_trip(&Value::Float(f));
        }
        round_trip(&Value::String("héllo".into()));
    }

    #[test]
    fn nested_values_round_trip() {
        round_trip(&Value::Array(vec![
            Value::UInt(7),
            Value::Object(vec![
                ("k".into(), Value::Null),
                ("xs".into(), Value::Array(vec![Value::Int(-3)])),
            ]),
        ]));
    }

    #[test]
    fn typed_round_trip_through_derive() {
        // An Event is the hot wire type; round-trip it end to end.
        use pdes_core::{Event, EventKey, EventUid, LpId, VirtualTime};
        let ev = Event {
            key: EventKey {
                recv_time: VirtualTime::from_f64(3.25),
                dst: LpId(7),
                uid: EventUid::new(LpId(2), 99),
            },
            send_time: VirtualTime::from_f64(1.5),
            payload: 42u64,
        };
        let bytes = to_bytes(&ev);
        let back: Event<u64> = from_bytes(&bytes).expect("round trip");
        assert_eq!(back, ev);
    }

    #[test]
    fn encoding_is_canonical() {
        use pdes_core::{EventKey, EventUid, LpId, Msg, VirtualTime};
        let m: Msg<u32> = Msg::Anti(EventKey {
            recv_time: VirtualTime::from_f64(9.0),
            dst: LpId(1),
            uid: EventUid::new(LpId(0), 3),
        });
        assert_eq!(to_bytes(&m), to_bytes(&m.clone()));
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let mut bytes = Vec::new();
        encode_value(
            &Value::Array(vec![Value::String("abcdef".into()), Value::UInt(1 << 40)]),
            &mut bytes,
        );
        for cut in 0..bytes.len() {
            let mut pos = 0;
            assert!(
                decode_value(&bytes[..cut], &mut pos).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        // Array claiming u64::MAX elements in a 3-byte buffer.
        let mut bytes = vec![TAG_ARRAY];
        put_varint(&mut bytes, u64::MAX);
        let mut pos = 0;
        let err = decode_value(&bytes, &mut pos).unwrap_err();
        assert!(err.0.contains("exceeds remaining"), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&5u64);
        bytes.push(0);
        assert!(from_bytes::<u64>(&bytes).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"beta").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"beta"[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_length_is_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }
}
