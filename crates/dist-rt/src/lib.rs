//! # ggpdes-dist-rt — the engine across shards
//!
//! A multi-shard distributed runtime: the simulation is partitioned into
//! `N` shards, each running a [`pdes_core::ThreadEngine`] over its slice of
//! LPs and exchanging remote events / anti-messages over length-prefixed
//! frames on TCP sockets (or in-memory links for deterministic tests).
//!
//! The pieces, bottom-up:
//!
//! - [`wire`] — a compact binary codec over the vendored serde data model
//!   plus `u32`-length-prefixed framing.
//! - [`link`] — a reliable, in-order link layer (sequence numbers, cumulative
//!   acks, retransmission, dedup) over an unreliable packet transport. Link
//!   faults ([`pdes_core::LinkFaultPlan`]) — delay, drop, duplicate — are
//!   injected *below* this layer, so the retransmission machinery is what
//!   keeps the simulation correct under them.
//! - [`gvt`] — asynchronous Mattern-style distributed GVT: an epoch-colored
//!   cut per round, per-link white send/receive counters, and a coordinator
//!   that re-polls (waves) until the counters match — no global barrier, and
//!   shards keep processing while a round is in flight.
//! - [`node`] — one shard: pumps links, delivers remote messages into its
//!   engine, processes batches, participates in GVT rounds, contributes
//!   per-shard cuts to distributed checkpoints, and de-schedules itself when
//!   it holds no live work (demand-driven throttling at shard granularity).
//! - [`launcher`] — loopback cluster launchers (threads over memory or TCP
//!   links), a kill-and-recover supervisor that restores every shard from
//!   the latest assembled checkpoint cut, and a deterministic single-threaded
//!   [`launcher::SteppedCluster`] for property tests.
//! - [`boundary`] — a [`thread_rt::RemoteBoundary`] adapter so a future
//!   multi-threaded shard can route out-of-shard sends through these links.
//!
//! ## Correctness contract
//!
//! Every distributed run must commit the exact sequential-oracle trace:
//! identical commit digest, per-LP state digests, and pending digest — at
//! any shard count, under link faults, and across a kill-and-recover.
//! The distributed GVT is monotonically non-decreasing and never exceeds
//! the true global minimum (a delivered message below the published GVT is
//! a protocol error, not a silent wrong answer).

pub mod boundary;
pub mod gvt;
pub mod launcher;
pub mod link;
pub mod node;
pub mod proto;
pub mod wire;

pub use boundary::LinkBoundary;
pub use gvt::{Coordinator, GvtTracker, RoundClosure};
pub use launcher::{
    run_loopback, run_loopback_ingest, run_shard_process, run_shard_process_ingest, DistConfig,
    DistResult, IngestGates, ProcessOpts, SteppedCluster, Transport,
};
pub use link::{
    read_hello, write_hello, Backoff, FrameTx, Inbox, MemTx, Packet, ReliableLink, TcpTx,
};
pub use node::{DistError, HeartbeatConfig, NodeOutcome, ReshapeAction, ShardNode};
pub use proto::{Frame, HELLO_MAGIC, PROTOCOL_VERSION};
pub use wire::WireError;
