//! Wire-decode fuzz: arbitrary bytes through the frame codec must never
//! panic — every outcome is either a structured [`WireError`] (or
//! `io::Error` at the framing layer) or a value whose canonical re-encoding
//! round-trips. Covers the robustness half of the codec's contract; the
//! happy-path round trips live in `wire.rs` and `proto.rs` unit tests.

use dist_rt::wire::{self, MAX_FRAME};
use dist_rt::Frame;
use pdes_core::Msg;
use proptest::prelude::*;

type F = Frame<u32, u8>;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Raw fuzz: any byte soup decodes to an error or to a value that
    /// re-encodes canonically (decode ∘ encode ∘ decode is stable).
    #[test]
    fn arbitrary_bytes_never_panic_the_typed_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..256)
    ) {
        if let Ok(frame) = wire::from_bytes::<F>(&bytes) {
            let re = wire::to_bytes(&frame);
            let back: F = wire::from_bytes(&re).expect("re-encoded value must decode");
            prop_assert_eq!(format!("{frame:?}"), format!("{back:?}"));
        }
    }

    /// Same property at the untyped value layer, where length prefixes and
    /// tags are interpreted.
    #[test]
    fn arbitrary_bytes_never_panic_the_value_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..256)
    ) {
        let mut pos = 0;
        if let Ok(v) = wire::decode_value(&bytes, &mut pos) {
            let mut re = Vec::new();
            wire::encode_value(&v, &mut re);
            let mut p2 = 0;
            let back = wire::decode_value(&re, &mut p2).expect("canonical re-encode decodes");
            prop_assert_eq!(p2, re.len());
            prop_assert_eq!(back, v);
        }
    }

    /// Valid frames with random byte flips and truncations: the decoder
    /// sees near-miss inputs (the realistic corruption shape) and must
    /// still never panic.
    #[test]
    fn mutated_valid_frames_never_panic(
        seed_payload in any::<u8>(),
        tag in any::<u64>(),
        flips in prop::collection::vec((any::<usize>(), any::<u8>()), 1..8),
        cut in any::<usize>(),
    ) {
        let valid: F = Frame::Sim {
            tag,
            msg: Msg::Event(pdes_core::Event {
                key: pdes_core::EventKey {
                    recv_time: pdes_core::VirtualTime::from_f64(3.5),
                    dst: pdes_core::LpId(2),
                    uid: pdes_core::EventUid::new(pdes_core::LpId(0), 9),
                },
                send_time: pdes_core::VirtualTime::from_f64(1.0),
                payload: seed_payload,
            }),
        };
        let mut bytes = wire::to_bytes(&valid);
        for (idx, val) in &flips {
            let i = idx % bytes.len();
            bytes[i] ^= val;
        }
        bytes.truncate(cut % (bytes.len() + 1));
        if let Ok(frame) = wire::from_bytes::<F>(&bytes) {
            let re = wire::to_bytes(&frame);
            prop_assert!(wire::from_bytes::<F>(&re).is_ok());
        }
    }

    /// Framing layer under truncated streams: a length prefix promising
    /// more bytes than the stream holds is an error (or a clean EOF when
    /// the prefix itself is cut), never a panic or a bogus frame.
    #[test]
    fn truncated_streams_error_cleanly(
        len in 0u32..2048,
        supplied in 0usize..64,
    ) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend(std::iter::repeat_n(0xAAu8, supplied.min(len as usize)));
        let mut r = std::io::Cursor::new(&buf);
        match wire::read_frame(&mut r) {
            Ok(Some(frame)) => prop_assert_eq!(frame.len(), len as usize),
            Ok(None) => prop_assert!(len > 0 && supplied < len as usize),
            Err(_) => prop_assert!(supplied < len as usize),
        }
    }
}

/// Length-inflated `u32` prefixes right around the frame cap: at the cap
/// the framing layer reports a mid-frame EOF; one past it (and at
/// `u32::MAX`) the corrupt prefix is rejected before any allocation is
/// sized from it.
#[test]
fn length_prefixes_around_max_frame_are_rejected_not_fatal() {
    for len in [MAX_FRAME as u64, MAX_FRAME as u64 + 1, u32::MAX as u64] {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(len as u32).to_le_bytes());
        // A few payload bytes, nowhere near the promised length.
        buf.extend_from_slice(&[0u8; 16]);
        let mut r = std::io::Cursor::new(&buf);
        let err = wire::read_frame(&mut r).expect_err("inflated prefix must error");
        if len > MAX_FRAME as u64 {
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "over-cap length {len} must be rejected as corrupt"
            );
        } else {
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "in-cap length {len} fails as a mid-frame EOF"
            );
        }
    }
}

/// A truncated length prefix itself (fewer than 4 bytes) is a clean EOF —
/// the peer hung up between frames.
#[test]
fn truncated_length_prefix_is_clean_eof() {
    for n in 0..4usize {
        let buf = vec![0x7Fu8; n];
        let mut r = std::io::Cursor::new(&buf);
        assert!(
            matches!(wire::read_frame(&mut r), Ok(None)),
            "a {n}-byte prefix fragment must read as clean EOF"
        );
    }
}
