//! The distributed equivalence invariant: a multi-shard run commits the
//! exact sequential-oracle trace — identical commit digest, per-LP state
//! digests, and pending digest — at 2 and 4 shards, over memory and TCP
//! links, under link faults, and across a shard kill-and-recover.

use std::sync::Arc;

use dist_rt::{run_loopback, DistConfig, DistResult, SteppedCluster, Transport};
use models::{Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig, LinkFaultPlan, SequentialResult};

/// One shared model/config pair: the oracle trace is a property of these,
/// not of the shard count.
fn model() -> Arc<Phold> {
    Arc::new(Phold::new(PholdConfig::balanced(4, 4)))
}

fn ecfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(77)
        // A bounded optimism window keeps shards advancing in lockstep
        // with GVT publishes — the regime the round machinery must carry.
        .with_optimism_window(Some(2.0))
}

fn dcfg(shards: usize, transport: Transport) -> DistConfig {
    DistConfig {
        shards,
        transport,
        gvt_interval_cycles: 16,
        wave_interval_cycles: 2,
        ..DistConfig::default()
    }
}

#[track_caller]
fn assert_matches_oracle(r: &DistResult, oracle: &SequentialResult, what: &str) {
    assert_eq!(r.metrics.committed, oracle.committed, "{what}: committed");
    assert_eq!(
        r.metrics.commit_digest, oracle.commit_digest,
        "{what}: commit digest"
    );
    let states: Vec<u64> = r.state_digests.iter().map(|(_, d)| *d).collect();
    assert_eq!(states, oracle.state_digests, "{what}: state digests");
    assert_eq!(
        r.pending_digest, oracle.pending_digest,
        "{what}: pending digest"
    );
    assert_eq!(r.regressions, 0, "{what}: GVT regressed");
}

#[test]
fn two_and_four_shards_match_oracle_over_memory_links() {
    let model = model();
    let ecfg = ecfg(12.0);
    let oracle = run_sequential(&model, &ecfg, None);
    assert!(oracle.committed > 100, "oracle too small to be interesting");
    for shards in [2, 4] {
        let r = run_loopback(Arc::clone(&model), &ecfg, &dcfg(shards, Transport::Mem))
            .expect("loopback run completes");
        assert_matches_oracle(&r, &oracle, &format!("{shards}-shard mem"));
        assert!(r.metrics.gvt_rounds > 3, "GVT rounds must have driven this");
    }
}

#[test]
fn two_and_four_shards_match_oracle_over_tcp() {
    let model = model();
    let ecfg = ecfg(10.0);
    let oracle = run_sequential(&model, &ecfg, None);
    for shards in [2, 4] {
        let r = run_loopback(Arc::clone(&model), &ecfg, &dcfg(shards, Transport::Tcp))
            .expect("tcp loopback run completes");
        assert_matches_oracle(&r, &oracle, &format!("{shards}-shard tcp"));
    }
}

#[test]
fn chaos_links_still_match_oracle() {
    let model = model();
    let ecfg = ecfg(10.0);
    let oracle = run_sequential(&model, &ecfg, None);
    for (shards, seed) in [(2, 5u64), (4, 6u64), (4, 7u64)] {
        let mut cfg = dcfg(shards, Transport::Mem);
        cfg.link_faults = Some(LinkFaultPlan::chaos(seed));
        let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("faulty-link run completes");
        assert_matches_oracle(&r, &oracle, &format!("{shards}-shard chaos seed {seed}"));
    }
}

#[test]
fn chaos_links_over_tcp_match_oracle() {
    let model = model();
    let ecfg = ecfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(2, Transport::Tcp);
    cfg.link_faults = Some(LinkFaultPlan::chaos(11));
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("run completes");
    assert_matches_oracle(&r, &oracle, "2-shard tcp chaos");
}

#[test]
fn killed_shard_recovers_from_checkpoint_cut_and_matches_oracle() {
    let model = model();
    let ecfg = ecfg(40.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(2, Transport::Mem);
    cfg.ckpt_every_rounds = 2;
    // Die on the 5th publish: rounds 2 and 4 were armed, so the coordinator
    // holds an assembled checkpoint cut by then — deterministically.
    cfg.kills = vec![(1, 5)];
    cfg.max_recoveries = 2;
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("recovers");
    assert_eq!(r.recoveries, 1, "exactly one scripted kill fires");
    assert!(
        r.used_checkpoint,
        "recovery must restore from an assembled per-shard cut"
    );
    assert_matches_oracle(&r, &oracle, "2-shard kill+recover");
}

#[test]
fn kill_before_any_checkpoint_replays_from_start() {
    let model = model();
    let ecfg = ecfg(10.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(2, Transport::Mem);
    // No armed rounds at all: recovery must fall back to a fresh replay.
    cfg.ckpt_every_rounds = 0;
    cfg.kills = vec![(0, 2)];
    cfg.max_recoveries = 1;
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("recovers");
    assert_eq!(r.recoveries, 1);
    assert!(!r.used_checkpoint);
    assert_matches_oracle(&r, &oracle, "replay-from-start recovery");
}

#[test]
fn kill_budget_exhaustion_is_a_clean_error() {
    let model = model();
    let ecfg = ecfg(10.0);
    let mut cfg = dcfg(2, Transport::Mem);
    cfg.kills = vec![(0, 2), (1, 2)];
    cfg.max_recoveries = 1; // two kills, one budget
    let err = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect_err("budget must run out");
    assert!(
        matches!(err, dist_rt::DistError::RecoveryExhausted { .. }),
        "got {err}"
    );
}

#[test]
fn stepped_cluster_is_deterministic() {
    let model = model();
    let ecfg = ecfg(8.0);
    let mut cfg = dcfg(3, Transport::Mem);
    cfg.link_faults = Some(LinkFaultPlan::chaos(3));
    let run = |m: &Arc<Phold>| {
        let mut c = SteppedCluster::new(Arc::clone(m), &ecfg, &cfg).expect("build");
        let out = c.run_to_completion(2_000_000).expect("completes");
        (out.totals.commit_digest, out.gvt, c.gvt_history.clone())
    };
    let a = run(&model);
    let b = run(&model);
    assert_eq!(a, b, "identical configs must replay identically");
}
