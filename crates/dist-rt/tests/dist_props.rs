//! Property tests for the distributed GVT, on the deterministic stepped
//! harness: random shard counts, seeds, optimism windows, and link-fault
//! plans — after *every* node step the published GVT must be monotonically
//! non-decreasing and never exceed the true global minimum.
//!
//! Three layers enforce "never exceeds the true global minimum":
//! - [`SteppedCluster::sweep`] checks `gvt <= engine pending minimum` on
//!   every node after every step and that per-node published GVT never
//!   regresses (a violation is a [`dist_rt::DistError::Protocol`], which
//!   fails the run);
//! - the node itself rejects any delivered message below the published GVT;
//! - the final trace must still equal the sequential oracle, which an
//!   overshooting fossil collection would corrupt.

use std::sync::Arc;

use dist_rt::{DistConfig, SteppedCluster, Transport};
use models::{Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig, LinkFaultPlan};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = (usize, u64, f64, Option<f64>, Option<u64>)> {
    // (shards, seed, end_time, optimism window, fault seed)
    (
        2usize..=4,
        any::<u64>(),
        4.0f64..10.0,
        prop::option::of(1.0f64..4.0),
        prop::option::of(any::<u64>()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn gvt_is_monotone_and_never_overshoots(
        (shards, seed, end, window, fault_seed) in arb_cfg()
    ) {
        let model = Arc::new(Phold::new(PholdConfig::balanced(4, 3)));
        let ecfg = EngineConfig::default()
            .with_end_time(end)
            .with_seed(seed)
            .with_optimism_window(window);
        let dcfg = DistConfig {
            shards,
            transport: Transport::Mem,
            link_faults: fault_seed.map(LinkFaultPlan::chaos),
            gvt_interval_cycles: 8,
            wave_interval_cycles: 2,
            ckpt_every_rounds: 4,
            ..DistConfig::default()
        };
        let oracle = run_sequential(&model, &ecfg, None);
        let mut cluster = SteppedCluster::new(Arc::clone(&model), &ecfg, &dcfg)
            .expect("build cluster");
        // run_to_completion propagates any sweep-time invariant violation.
        let out = cluster.run_to_completion(4_000_000).expect("invariants hold");
        prop_assert_eq!(out.regressions, 0, "coordinator clamped a regression");
        for (i, hist) in cluster.gvt_history.iter().enumerate() {
            prop_assert!(
                hist.windows(2).all(|w| w[0] <= w[1]),
                "shard {} saw a non-monotone GVT sequence", i
            );
        }
        // Terminal GVT must have crossed the end time.
        prop_assert!(out.gvt >= ecfg.end_time.ticks());
        // And the trace is still exactly the oracle's.
        prop_assert_eq!(out.totals.committed, oracle.committed);
        prop_assert_eq!(out.totals.commit_digest, oracle.commit_digest);
        let states: Vec<u64> = out.state_digests.iter().map(|(_, d)| *d).collect();
        prop_assert_eq!(states, oracle.state_digests);
        prop_assert_eq!(out.pending_digest, oracle.pending_digest);
    }

    /// Armed rounds assemble checkpoints whose committed totals are
    /// consistent with the cut's GVT: restoring and replaying sequentially
    /// from the cut reproduces the full oracle trace.
    #[test]
    fn assembled_checkpoints_resume_to_the_oracle(
        seed in any::<u64>(), end in 6.0f64..10.0,
    ) {
        let model = Arc::new(Phold::new(PholdConfig::balanced(4, 3)));
        let ecfg = EngineConfig::default()
            .with_end_time(end)
            .with_seed(seed)
            .with_optimism_window(Some(2.0));
        let dcfg = DistConfig {
            shards: 3,
            transport: Transport::Mem,
            gvt_interval_cycles: 8,
            ckpt_every_rounds: 2,
            ..DistConfig::default()
        };
        let oracle = run_sequential(&model, &ecfg, None);
        let mut cluster = SteppedCluster::new(Arc::clone(&model), &ecfg, &dcfg)
            .expect("build cluster");
        cluster.run_to_completion(4_000_000).expect("completes");
        let ck = cluster.latest_checkpoint().expect("armed rounds ran");
        prop_assert!(ck.total_committed() <= oracle.committed);
        let resumed = pdes_core::run_sequential_from(&model, &ecfg, &ck, None);
        prop_assert_eq!(resumed.committed, oracle.committed);
        prop_assert_eq!(resumed.commit_digest, oracle.commit_digest);
        prop_assert_eq!(resumed.state_digests, oracle.state_digests);
    }
}
