//! Elastic membership under the distributed equivalence invariant: a
//! transient partition heals without recovery, a killed shard is restored
//! *partially* from the latest GVT cut while the survivors keep running,
//! exhausted recovery budgets degrade the cluster instead of failing it,
//! and shards join/leave at cuts — and in every case the run still commits
//! the exact sequential-oracle trace.

use std::sync::Arc;
use std::time::Duration;

use dist_rt::{run_loopback, DistConfig, DistResult, HeartbeatConfig, SteppedCluster, Transport};
use models::{Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig, SequentialResult};
use proptest::prelude::*;
use telemetry::{EventKind, TelemetryConfig, TelemetryData};

fn model() -> Arc<Phold> {
    Arc::new(Phold::new(PholdConfig::balanced(4, 4)))
}

fn ecfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(77)
        .with_optimism_window(Some(2.0))
}

fn dcfg(shards: usize, transport: Transport) -> DistConfig {
    DistConfig {
        shards,
        transport,
        gvt_interval_cycles: 16,
        wave_interval_cycles: 2,
        telemetry: TelemetryConfig::on(),
        ..DistConfig::default()
    }
}

#[track_caller]
fn assert_matches_oracle(r: &DistResult, oracle: &SequentialResult, what: &str) {
    assert_eq!(r.metrics.committed, oracle.committed, "{what}: committed");
    assert_eq!(
        r.metrics.commit_digest, oracle.commit_digest,
        "{what}: commit digest"
    );
    let states: Vec<u64> = r.state_digests.iter().map(|(_, d)| *d).collect();
    assert_eq!(states, oracle.state_digests, "{what}: state digests");
    assert_eq!(
        r.pending_digest, oracle.pending_digest,
        "{what}: pending digest"
    );
    assert_eq!(r.regressions, 0, "{what}: GVT regressed");
}

fn kind_count(data: &TelemetryData, kind: EventKind) -> usize {
    data.threads
        .iter()
        .flat_map(|t| t.records.iter())
        .filter(|r| r.kind == kind)
        .count()
}

/// A one-directional partition that heals within the heartbeat lease:
/// retransmission redelivers the swallowed frames, and no recovery of any
/// kind happens.
#[test]
fn partition_healing_within_lease_needs_no_recovery() {
    let model = model();
    let ecfg = ecfg(12.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(4, Transport::Mem);
    cfg.ckpt_every_rounds = 2;
    cfg.max_recoveries = 0; // any recovery is a test failure
    cfg.heartbeat = Some(HeartbeatConfig::default());
    // Shard 1 -> shard 2 goes dark until shard 1 has run 2 rounds' worth
    // of cycles, then heals.
    cfg.partitions = vec![(1, 2, 2)];
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("run completes");
    assert_eq!(r.recoveries, 0, "a healed partition is not a failure");
    assert_eq!(r.partial_recoveries, 0);
    assert_eq!(r.membership_epoch, 0);
    let data = r.telemetry.as_ref().expect("telemetry on");
    assert!(
        kind_count(data, EventKind::LinkRetransmit) > 0,
        "the partition must have forced retransmissions"
    );
    assert_eq!(
        kind_count(data, EventKind::PartialRestore),
        0,
        "no shard may have been restored"
    );
    assert_matches_oracle(&r, &oracle, "4-shard partition+heal");
}

/// A killed shard is restored alone from the newest cut: the survivors
/// keep their engines, replay their send logs across the cut, and the run
/// still commits the oracle trace.
#[test]
fn killed_shard_partially_recovers_over_memory_links() {
    let model = model();
    let ecfg = ecfg(40.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(4, Transport::Mem);
    cfg.ckpt_every_rounds = 2;
    // Die on the 5th publish: rounds 2 and 4 were armed, so an assembled
    // cut exists — deterministically — and the coordinator survives.
    cfg.kills = vec![(2, 5)];
    cfg.max_recoveries = 2;
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("recovers");
    assert_eq!(r.recoveries, 1, "exactly one scripted kill fires");
    assert_eq!(
        r.partial_recoveries, 1,
        "the recovery must have been partial (survivors kept running state)"
    );
    assert!(r.used_checkpoint);
    let data = r.telemetry.as_ref().expect("telemetry on");
    assert!(
        kind_count(data, EventKind::PartialRestore) >= 1,
        "the restored shard stamps a partial-restore instant"
    );
    assert_matches_oracle(&r, &oracle, "4-shard partial recovery (mem)");
}

/// The acceptance scenario: 4 shards over real TCP sockets, one killed
/// mid-run, partial recovery rebuilds its links and the digest still
/// matches the sequential oracle.
#[test]
fn killed_shard_partially_recovers_over_tcp() {
    let model = model();
    let ecfg = ecfg(30.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(4, Transport::Tcp);
    cfg.ckpt_every_rounds = 2;
    cfg.kills = vec![(3, 5)];
    cfg.max_recoveries = 2;
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("recovers");
    assert_eq!(r.recoveries, 1);
    assert_eq!(r.partial_recoveries, 1, "recovery must be partial");
    assert_matches_oracle(&r, &oracle, "4-shard partial recovery (tcp)");
}

/// A silent kill (no cohort abort flag) must be *discovered* by the
/// coordinator's heartbeat lease, suspected first (phi), then declared
/// dead and partially recovered.
#[test]
fn silent_kill_is_discovered_by_the_heartbeat_detector() {
    let model = model();
    let ecfg = ecfg(40.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(4, Transport::Mem);
    cfg.ckpt_every_rounds = 2;
    cfg.kills = vec![(2, 5)];
    cfg.kill_silent = true;
    cfg.max_recoveries = 2;
    cfg.heartbeat = Some(HeartbeatConfig {
        interval: Duration::from_millis(5),
        miss_threshold: 20,
        phi_threshold: 8.0,
    });
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("recovers");
    assert_eq!(r.recoveries, 1, "the detector must find the silent death");
    assert_eq!(r.partial_recoveries, 1);
    let data = r.telemetry.as_ref().expect("telemetry on");
    assert!(
        kind_count(data, EventKind::HeartbeatMiss) >= 1,
        "the dead shard must have been suspected before being declared"
    );
    assert_matches_oracle(&r, &oracle, "silent kill via heartbeat");
}

/// When the recovery budget is exhausted but a cut exists, the cluster
/// degrades: the dead shard's LPs are absorbed by the survivors and the
/// (smaller) run still finishes with the oracle digest.
#[test]
fn exhausted_recovery_budget_degrades_to_a_smaller_cluster() {
    let model = model();
    let ecfg = ecfg(40.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(4, Transport::Mem);
    cfg.ckpt_every_rounds = 2;
    cfg.kills = vec![(1, 5)];
    cfg.max_recoveries = 0; // no budget at all
    cfg.degrade = true;
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("degrades, not dies");
    assert_eq!(r.shards_final, 3, "the cluster must have shrunk by one");
    assert_eq!(r.membership_epoch, 1);
    assert!(r.used_checkpoint);
    assert_matches_oracle(&r, &oracle, "degraded 4->3 cluster");
}

/// Without `degrade`, the same exhausted budget is still a clean error.
#[test]
fn exhausted_budget_without_degrade_is_an_error() {
    let model = model();
    let ecfg = ecfg(40.0);
    let mut cfg = dcfg(4, Transport::Mem);
    cfg.ckpt_every_rounds = 2;
    cfg.kills = vec![(1, 5)];
    cfg.max_recoveries = 0;
    let err = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect_err("budget is zero");
    assert!(
        matches!(err, dist_rt::DistError::RecoveryExhausted { .. }),
        "got {err}"
    );
}

/// A shard joins mid-run at a GVT cut: the membership grows by one, LPs
/// are rebalanced by load, and the trace is still the oracle's.
#[test]
fn shard_joins_at_a_cut_and_matches_oracle() {
    let model = model();
    let ecfg = ecfg(40.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(4, Transport::Mem);
    cfg.ckpt_every_rounds = 2;
    cfg.join_at = Some(4);
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("join completes");
    assert_eq!(r.shards_final, 5, "the joiner must be in the membership");
    assert_eq!(r.membership_epoch, 1);
    let data = r.telemetry.as_ref().expect("telemetry on");
    assert!(
        kind_count(data, EventKind::ShardJoin) >= 1,
        "the join must be stamped on the trace"
    );
    assert_matches_oracle(&r, &oracle, "4->5 shard join");
}

/// A shard drains out mid-run at a GVT cut: its LPs are absorbed by the
/// survivors and the smaller membership finishes with the oracle digest.
#[test]
fn shard_leaves_at_a_cut_and_matches_oracle() {
    let model = model();
    let ecfg = ecfg(40.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut cfg = dcfg(4, Transport::Mem);
    cfg.ckpt_every_rounds = 2;
    cfg.leave_at = Some((3, 4));
    let r = run_loopback(Arc::clone(&model), &ecfg, &cfg).expect("leave completes");
    assert_eq!(r.shards_final, 3, "the leaver must be gone");
    assert_eq!(r.membership_epoch, 1);
    let data = r.telemetry.as_ref().expect("telemetry on");
    assert!(
        kind_count(data, EventKind::ShardLeave) >= 1,
        "the leave must be stamped on the trace"
    );
    assert_matches_oracle(&r, &oracle, "4->3 shard leave");
}

/// Join and leave over TCP as well — the reshape rebuilds the whole mesh.
#[test]
fn join_and_leave_over_tcp_match_oracle() {
    let model = model();
    let ecfg = ecfg(30.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let mut join = dcfg(3, Transport::Tcp);
    join.ckpt_every_rounds = 2;
    join.join_at = Some(4);
    let r = run_loopback(Arc::clone(&model), &ecfg, &join).expect("tcp join completes");
    assert_eq!(r.shards_final, 4);
    assert_matches_oracle(&r, &oracle, "3->4 shard join (tcp)");

    let mut leave = dcfg(4, Transport::Tcp);
    leave.ckpt_every_rounds = 2;
    leave.leave_at = Some((2, 4));
    let r = run_loopback(Arc::clone(&model), &ecfg, &leave).expect("tcp leave completes");
    assert_eq!(r.shards_final, 3);
    assert_matches_oracle(&r, &oracle, "4->3 shard leave (tcp)");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Membership (recovery-epoch) transitions never violate the GVT
    /// safety invariants: on the deterministic stepped harness, kill a
    /// random non-coordinator shard at a random point and restore it
    /// partially from the latest cut — every subsequent sweep re-checks
    /// `GVT <= local minimum` and per-shard monotonicity, and the final
    /// trace must still be the oracle's.
    #[test]
    fn partial_recovery_never_breaks_gvt_invariants(
        shards in 2usize..=4,
        seed in any::<u64>(),
        end in 6.0f64..12.0,
        dead_pick in any::<usize>(),
        after_sweeps in 50u64..800,
    ) {
        let model = Arc::new(Phold::new(PholdConfig::balanced(4, 3)));
        let ecfg = EngineConfig::default()
            .with_end_time(end)
            .with_seed(seed)
            .with_optimism_window(Some(2.0));
        let dcfg = DistConfig {
            shards,
            transport: Transport::Mem,
            gvt_interval_cycles: 8,
            wave_interval_cycles: 2,
            ckpt_every_rounds: 2,
            ..DistConfig::default()
        };
        let oracle = run_sequential(&model, &ecfg, None);
        let dead = 1 + dead_pick % (shards - 1).max(1);
        let mut cluster = SteppedCluster::new(Arc::clone(&model), &ecfg, &dcfg)
            .expect("build cluster");
        let mut recovered = false;
        let mut done = false;
        for sweep in 0..4_000_000u64 {
            if cluster.sweep().expect("invariants hold") {
                done = true;
                break;
            }
            if !recovered && sweep >= after_sweeps {
                // Not possible until a cut exists; keep trying each sweep.
                recovered = cluster.partial_recover(&[dead]).expect("recovery is clean");
            }
        }
        prop_assert!(done, "cluster never finished");
        let out = cluster.take_outcome().expect("coordinator outcome");
        prop_assert_eq!(out.regressions, 0);
        for (i, hist) in cluster.gvt_history.iter().enumerate() {
            prop_assert!(
                hist.windows(2).all(|w| w[0] <= w[1]),
                "shard {} saw a non-monotone GVT sequence", i
            );
        }
        prop_assert_eq!(out.totals.committed, oracle.committed);
        prop_assert_eq!(out.totals.commit_digest, oracle.commit_digest);
        let states: Vec<u64> = out.state_digests.iter().map(|(_, d)| *d).collect();
        prop_assert_eq!(states, oracle.state_digests);
        prop_assert_eq!(out.pending_digest, oracle.pending_digest);
    }
}
