//! Telemetry across shards: every shard's trace and round stream must reach
//! the coordinator, stamped with its shard id and merged onto one clock.

use dist_rt::{run_loopback, DistConfig, Transport};
use models::{Phold, PholdConfig};
use pdes_core::EngineConfig;
use std::sync::Arc;
use telemetry::TelemetryConfig;

fn engine_cfg() -> EngineConfig {
    EngineConfig::default()
        .with_end_time(4.0)
        .with_seed(909)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(100)
}

fn dcfg(shards: usize, traced: bool) -> DistConfig {
    DistConfig {
        shards,
        transport: Transport::Mem,
        gvt_interval_cycles: 16,
        telemetry: if traced {
            TelemetryConfig::on()
        } else {
            TelemetryConfig::default()
        },
        ..DistConfig::default()
    }
}

#[test]
fn dist_telemetry_is_off_by_default() {
    let shards = 2;
    let model = Arc::new(Phold::new(PholdConfig::balanced(shards, 4)));
    let r = run_loopback(Arc::clone(&model), &engine_cfg(), &dcfg(shards, false))
        .expect("loopback run");
    assert!(r.telemetry.is_none());
    assert!(r.metrics.last_round.is_none());
}

#[test]
fn coordinator_merges_every_shards_trace_and_rounds() {
    let shards = 3;
    let model = Arc::new(Phold::new(PholdConfig::balanced(shards, 4)));
    let r =
        run_loopback(Arc::clone(&model), &engine_cfg(), &dcfg(shards, true)).expect("loopback run");
    let data = r.telemetry.expect("merged telemetry");

    // One trace lane per shard, each stamped with its shard id.
    let mut shard_ids: Vec<u64> = data.threads.iter().map(|t| t.shard).collect();
    shard_ids.sort_unstable();
    shard_ids.dedup();
    assert_eq!(
        shard_ids,
        vec![0, 1, 2],
        "missing shard lanes: {shard_ids:?}"
    );
    for t in &data.threads {
        assert_eq!(
            t.dropped + t.records.len() as u64,
            t.emitted,
            "shard {} ring accounting leaked",
            t.shard
        );
    }

    // Every shard's round stream is present and per-shard GVT is monotone.
    for shard in 0..shards as u64 {
        let gvts: Vec<u64> = data
            .rounds
            .iter()
            .filter(|r| r.shard == shard)
            .map(|r| r.gvt_ticks)
            .collect();
        assert!(!gvts.is_empty(), "shard {shard} recorded no rounds");
        for w in gvts.windows(2) {
            assert!(w[1] >= w[0], "shard {shard} GVT regressed in snapshots");
        }
    }

    // The merged set satisfies the exporter + the trace_check phase set.
    let json = telemetry::chrome_trace_json(&data);
    serde_json::parse(&json).expect("valid Chrome trace JSON");
    let mut names: Vec<&str> = data
        .threads
        .iter()
        .flat_map(|t| t.records.iter())
        .map(|r| r.kind.name())
        .collect();
    names.sort_unstable();
    names.dedup();
    for required in ["gvt-a", "gvt-b", "gvt-aware", "gvt-end", "gvt-send-a"] {
        assert!(names.contains(&required), "{required} missing: {names:?}");
    }

    // And the newest snapshot feeds the coordinator's metrics.
    assert!(r.metrics.last_round.is_some());
}

#[test]
fn wire_round_trips_a_shard_telemetry_frame() {
    // The Frame::Telemetry payload must survive the wire codec unchanged —
    // this is the path every worker shard's trace takes to the coordinator.
    use telemetry::{EventKind, TelemetryData, ThreadTrace, TraceRecord};
    let data = TelemetryData {
        threads: vec![ThreadTrace {
            tid: 0,
            shard: 0,
            emitted: 3,
            dropped: 1,
            records: vec![
                TraceRecord {
                    kind: EventKind::GvtA,
                    ts_ns: 10,
                    dur_ns: 4,
                    arg: 1,
                },
                TraceRecord {
                    kind: EventKind::LinkRetransmit,
                    ts_ns: 20,
                    dur_ns: 0,
                    arg: (2u64 << 32) | 1,
                },
            ],
        }],
        rounds: vec![pdes_core::RoundCounters {
            round: 1,
            gvt_ticks: 500,
            ts_ns: 30,
            lvt_ticks: vec![600],
            queue_depths: vec![2],
            ..Default::default()
        }],
    };
    let frame: dist_rt::proto::Frame<u32, u8> = dist_rt::proto::Frame::Telemetry {
        shard: 1,
        sent_at_ns: 99,
        data,
    };
    let bytes = dist_rt::wire::to_bytes(&frame);
    let back: dist_rt::proto::Frame<u32, u8> = dist_rt::wire::from_bytes(&bytes).expect("decode");
    assert_eq!(format!("{frame:?}"), format!("{back:?}"));
}
