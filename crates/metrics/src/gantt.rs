//! ASCII activity gantt: render per-thread scheduled-in/out intervals the
//! way the paper's Figure 1 sketches them.
//!
//! Input is the transition list produced by `sim_rt::SimResult::timeline`:
//! `(time, thread, scheduled_in)`. Threads start scheduled-in.

/// Render an activity gantt. `width` columns cover `[0, horizon]`;
/// `█` = scheduled in, `·` = de-scheduled.
pub fn render_gantt(
    transitions: &[(u64, usize, bool)],
    num_threads: usize,
    horizon: u64,
    width: usize,
) -> String {
    assert!(width >= 2 && num_threads >= 1);
    let horizon = horizon.max(1);
    // Per-thread sorted transition times.
    let mut per: Vec<Vec<(u64, bool)>> = vec![Vec::new(); num_threads];
    for &(t, th, s) in transitions {
        if th < num_threads {
            per[th].push((t, s));
        }
    }
    let mut out = String::new();
    let label_w = num_threads.saturating_sub(1).to_string().len().max(1);
    for (th, trs) in per.iter().enumerate() {
        let mut row = format!("T{th:<label_w$} ");
        let mut idx = 0;
        let mut state = true; // threads start scheduled-in
        for col in 0..width {
            // Time at the *end* of this column's slot.
            let t = (col as u64 + 1) * horizon / width as u64;
            while idx < trs.len() && trs[idx].0 <= t {
                state = trs[idx].1;
                idx += 1;
            }
            row.push(if state { '█' } else { '·' });
        }
        out.push_str(&row);
        out.push('\n');
    }
    let mut axis = format!("{:label_w$}  0", "");
    let horizon_ms = horizon as f64 * 1e-6;
    let tail = format!("{horizon_ms:.1} ms (virtual)");
    let pad = (width + 1).saturating_sub(1 + tail.len());
    axis.push_str(&" ".repeat(pad));
    axis.push_str(&tail);
    out.push_str(&axis);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_schedule_out_and_in() {
        // Thread 1 parks at 50% and returns at 75%.
        let transitions = vec![(500u64, 1usize, false), (750, 1, true)];
        let g = render_gantt(&transitions, 2, 1000, 8);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "T0 ████████");
        // A transition landing exactly on a column boundary applies to that
        // column (the column shows the state at its end time).
        assert_eq!(lines[1], "T1 ███··███");
    }

    #[test]
    fn threads_without_transitions_stay_active() {
        let g = render_gantt(&[], 3, 100, 4);
        for line in g.lines().take(3) {
            assert!(line.ends_with("████"), "{line}");
        }
    }

    #[test]
    fn out_of_range_threads_are_ignored() {
        let g = render_gantt(&[(10, 99, false)], 1, 100, 4);
        assert!(g.lines().next().expect("row").contains("████"));
    }

    #[test]
    fn axis_shows_horizon() {
        let g = render_gantt(&[], 1, 2_000_000, 10);
        assert!(g.contains("2.0 ms"), "{g}");
    }
}
