//! ASCII activity gantt: render per-thread scheduled-in/out intervals the
//! way the paper's Figure 1 sketches them.
//!
//! Input is the transition list produced by `sim_rt::SimResult::timeline`
//! or derived from a collected trace via [`transitions_from_trace`]:
//! `(time, thread, scheduled_in)`. Threads start scheduled-in.

use telemetry::{EventKind, TelemetryData};

/// Derive the gantt transition list from a collected trace: every `Park`
/// span on a thread is a de-scheduled interval `[ts, ts + dur]`, so it
/// contributes a scheduled-out transition at its start and a scheduled-in
/// one at its end. A thread with no park spans never descheduled and stays
/// solid. Transitions come back time-sorted, ready for [`render_gantt`].
pub fn transitions_from_trace(data: &TelemetryData, num_threads: usize) -> Vec<(u64, usize, bool)> {
    let mut out = Vec::new();
    for t in &data.threads {
        if t.tid >= num_threads {
            continue;
        }
        for r in &t.records {
            if r.kind == EventKind::Park {
                out.push((r.ts_ns, t.tid, false));
                out.push((r.ts_ns + r.dur_ns, t.tid, true));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The latest timestamp any record in the trace covers (gantt horizon).
pub fn trace_horizon(data: &TelemetryData) -> u64 {
    data.threads
        .iter()
        .flat_map(|t| t.records.iter())
        .map(|r| r.ts_ns + r.dur_ns)
        .max()
        .unwrap_or(0)
}

/// Render an activity gantt. `width` columns cover `[0, horizon]`;
/// `█` = scheduled in, `·` = de-scheduled.
pub fn render_gantt(
    transitions: &[(u64, usize, bool)],
    num_threads: usize,
    horizon: u64,
    width: usize,
) -> String {
    assert!(width >= 2 && num_threads >= 1);
    let horizon = horizon.max(1);
    // Per-thread sorted transition times.
    let mut per: Vec<Vec<(u64, bool)>> = vec![Vec::new(); num_threads];
    for &(t, th, s) in transitions {
        if th < num_threads {
            per[th].push((t, s));
        }
    }
    let mut out = String::new();
    let label_w = num_threads.saturating_sub(1).to_string().len().max(1);
    for (th, trs) in per.iter().enumerate() {
        let mut row = format!("T{th:<label_w$} ");
        let mut idx = 0;
        let mut state = true; // threads start scheduled-in
        for col in 0..width {
            // Time at the *end* of this column's slot.
            let t = (col as u64 + 1) * horizon / width as u64;
            while idx < trs.len() && trs[idx].0 <= t {
                state = trs[idx].1;
                idx += 1;
            }
            row.push(if state { '█' } else { '·' });
        }
        out.push_str(&row);
        out.push('\n');
    }
    let mut axis = format!("{:label_w$}  0", "");
    // Nanoseconds in, milliseconds on the axis — virtual on the vm
    // runtime, wall clock on the others.
    let horizon_ms = horizon as f64 * 1e-6;
    let tail = format!("{horizon_ms:.1} ms");
    let pad = (width + 1).saturating_sub(1 + tail.len());
    axis.push_str(&" ".repeat(pad));
    axis.push_str(&tail);
    out.push_str(&axis);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_schedule_out_and_in() {
        // Thread 1 parks at 50% and returns at 75%.
        let transitions = vec![(500u64, 1usize, false), (750, 1, true)];
        let g = render_gantt(&transitions, 2, 1000, 8);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "T0 ████████");
        // A transition landing exactly on a column boundary applies to that
        // column (the column shows the state at its end time).
        assert_eq!(lines[1], "T1 ███··███");
    }

    #[test]
    fn threads_without_transitions_stay_active() {
        let g = render_gantt(&[], 3, 100, 4);
        for line in g.lines().take(3) {
            assert!(line.ends_with("████"), "{line}");
        }
    }

    #[test]
    fn out_of_range_threads_are_ignored() {
        let g = render_gantt(&[(10, 99, false)], 1, 100, 4);
        assert!(g.lines().next().expect("row").contains("████"));
    }

    #[test]
    fn axis_shows_horizon() {
        let g = render_gantt(&[], 1, 2_000_000, 10);
        assert!(g.contains("2.0 ms"), "{g}");
    }

    fn trace_with_parks(parks: &[(usize, u64, u64)], quiet_tid: usize) -> TelemetryData {
        use telemetry::{ThreadTrace, TraceRecord};
        let mut threads: Vec<ThreadTrace> = Vec::new();
        for &(tid, ts, dur) in parks {
            threads.push(ThreadTrace {
                tid,
                shard: 0,
                emitted: 1,
                dropped: 0,
                records: vec![TraceRecord {
                    kind: EventKind::Park,
                    ts_ns: ts,
                    dur_ns: dur,
                    arg: 0,
                }],
            });
        }
        // The quiet thread traced work but never a park span.
        threads.push(ThreadTrace {
            tid: quiet_tid,
            shard: 0,
            emitted: 1,
            dropped: 0,
            records: vec![TraceRecord {
                kind: EventKind::EventBatch,
                ts_ns: 10,
                dur_ns: 20,
                arg: 3,
            }],
        });
        TelemetryData {
            threads,
            rounds: Vec::new(),
        }
    }

    #[test]
    fn trace_park_spans_become_out_in_pairs() {
        let data = trace_with_parks(&[(1, 500, 250)], 0);
        let trs = transitions_from_trace(&data, 2);
        assert_eq!(trs, vec![(500, 1, false), (750, 1, true)]);
        let g = render_gantt(&trs, 2, 1000, 8);
        assert_eq!(g.lines().nth(1).expect("row T1"), "T1 ███··███");
    }

    #[test]
    fn thread_that_never_parks_renders_solid() {
        // Figure-1 sanity: a thread with no Park spans never deschedules,
        // so its lane is solid across the whole horizon.
        let data = trace_with_parks(&[(1, 200, 100)], 0);
        let trs = transitions_from_trace(&data, 2);
        assert!(trs.iter().all(|&(_, th, _)| th != 0));
        let g = render_gantt(&trs, 2, trace_horizon(&data).max(1000), 10);
        let row0 = g.lines().next().expect("row T0");
        assert_eq!(row0, "T0 ██████████");
    }

    #[test]
    fn trace_horizon_spans_longest_record() {
        let data = trace_with_parks(&[(1, 500, 250)], 0);
        assert_eq!(trace_horizon(&data), 750);
        assert_eq!(trace_horizon(&TelemetryData::default()), 0);
    }

    #[test]
    fn out_of_range_tids_in_trace_are_dropped() {
        let data = trace_with_parks(&[(7, 100, 50)], 0);
        assert!(transitions_from_trace(&data, 2).is_empty());
    }
}
