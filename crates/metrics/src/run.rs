//! The per-run metrics record.

use serde::{Deserialize, Serialize};

/// Everything measured in one simulation run. Produced by both runtimes so
/// experiments can compare systems uniformly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunMetrics {
    /// System under test, e.g. `"GG-PDES-Async"`.
    pub system: String,
    /// Simulation threads in the run.
    pub threads: usize,
    /// Total LPs.
    pub lps: usize,
    /// Wall-clock seconds (virtual for `sim-rt`, real for `thread-rt`).
    pub wall_secs: f64,
    /// Events committed (survived to / below GVT).
    pub committed: u64,
    /// Events processed, including later-rolled-back ones.
    pub processed: u64,
    /// Events undone by rollbacks.
    pub rolled_back: u64,
    /// Rollback episodes.
    pub rollbacks: u64,
    /// Anti-messages sent.
    pub antis_sent: u64,
    /// GVT rounds completed.
    pub gvt_rounds: u64,
    /// CPU time spent inside GVT computation, summed over threads (seconds).
    pub gvt_cpu_secs: f64,
    /// Total raw work units executed ("instructions").
    pub total_work: u64,
    /// Work units spent polling empty queues or spinning.
    pub wasted_work: u64,
    /// Maximum threads simultaneously de-scheduled (demand-driven systems).
    pub max_descheduled: usize,
    /// `sched_setaffinity` rejections while applying an affinity policy
    /// (non-fatal: the affected threads stay on kernel scheduling).
    pub pin_failures: u64,
    /// XOR-fold commit digest (for cross-runtime correctness checks).
    pub commit_digest: u64,
    /// Final telemetry counter snapshot — the last completed GVT round —
    /// when the run was traced (`None` with telemetry off; absent fields
    /// in older JSON deserialize to `None`).
    pub last_round: Option<pdes_core::RoundCounters>,
    /// Synchronization protocol of the runtime: `"optimistic"` (Time Warp)
    /// or `"conservative"` (null-message), so downstream tooling needn't
    /// sniff the runtime from `system`.
    pub protocol: String,
    /// Null-message guarantees published (conservative runtimes only;
    /// zero on optimistic runtimes).
    pub null_messages_sent: u64,
    /// LBTS reduction rounds completed (conservative runtimes only; zero
    /// on optimistic runtimes, which count `gvt_rounds` instead).
    pub lbts_rounds: u64,
}

impl RunMetrics {
    /// The paper's headline metric: committed events per wall-clock second.
    pub fn committed_event_rate(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.committed as f64 / self.wall_secs
    }

    /// Average CPU seconds per GVT round, accumulated over threads —
    /// the quantity quoted throughout the paper's §6.
    pub fn gvt_secs_per_round(&self) -> f64 {
        if self.gvt_rounds == 0 {
            return 0.0;
        }
        self.gvt_cpu_secs / self.gvt_rounds as f64
    }

    /// Fraction of processed events that were rolled back.
    pub fn rollback_ratio(&self) -> f64 {
        if self.processed == 0 {
            return 0.0;
        }
        self.rolled_back as f64 / self.processed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let m = RunMetrics {
            committed: 100,
            processed: 125,
            rolled_back: 25,
            wall_secs: 2.0,
            gvt_rounds: 4,
            gvt_cpu_secs: 1.0,
            ..Default::default()
        };
        assert_eq!(m.committed_event_rate(), 50.0);
        assert_eq!(m.gvt_secs_per_round(), 0.25);
        assert_eq!(m.rollback_ratio(), 0.2);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let m = RunMetrics::default();
        assert_eq!(m.committed_event_rate(), 0.0);
        assert_eq!(m.gvt_secs_per_round(), 0.0);
        assert_eq!(m.rollback_ratio(), 0.0);
    }

    #[test]
    fn serializes_to_json() {
        let m = RunMetrics {
            system: "GG-PDES-Async".into(),
            threads: 256,
            protocol: "optimistic".into(),
            ..Default::default()
        };
        let j = serde_json::to_string(&m).unwrap();
        assert!(j.contains("GG-PDES-Async"));
        assert!(j.contains("\"protocol\":\"optimistic\""));
        let back: RunMetrics = serde_json::from_str(&j).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn protocol_fields_round_trip() {
        let m = RunMetrics {
            protocol: "conservative".into(),
            null_messages_sent: 42,
            lbts_rounds: 7,
            ..Default::default()
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.protocol, "conservative");
        assert_eq!(back.null_messages_sent, 42);
        assert_eq!(back.lbts_rounds, 7);
    }
}
