//! # ggpdes-metrics — experiment metrics and reporting
//!
//! The paper reports *committed event rate* (committed events per wall-clock
//! second), per-round GVT CPU time, instruction counts, and rollback
//! statistics. This crate defines the common result record produced by both
//! runtimes plus table/CSV/JSON reporters used by the benchmark harness.

pub mod gantt;
pub mod report;
pub mod run;

pub use gantt::{render_gantt, trace_horizon, transitions_from_trace};
pub use report::{Series, Table};
pub use run::RunMetrics;
