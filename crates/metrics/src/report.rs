//! Figure/table reporters: aligned text, CSV, and JSON.

use crate::run::RunMetrics;
use serde::{Deserialize, Serialize};

/// One line series of a figure: committed event rate (or any y metric)
/// against thread count, for one system.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Series {
    pub name: String,
    /// `(x, y)` points, x ascending.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(x > last, "x must be ascending ({x} after {last})");
        }
        self.points.push((x, y));
    }

    /// y value at a given x, if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// A figure: several series over a common x axis.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Table {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl Table {
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    pub fn series_mut(&mut self, name: &str) -> &mut Series {
        if let Some(i) = self.series.iter().position(|s| s.name == name) {
            return &mut self.series[i];
        }
        self.series.push(Series::new(name));
        self.series.last_mut().expect("just pushed")
    }

    /// Record a run's committed event rate as a point.
    pub fn record_rate(&mut self, m: &RunMetrics) {
        self.series_mut(&m.system)
            .push(m.threads as f64, m.committed_event_rate());
    }

    /// All distinct x values, ascending.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Render an aligned text table (rows = x values, columns = series).
    /// Decimal places adapt to the magnitude of the values so small
    /// quantities (e.g. seconds per GVT round) stay readable.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let xs = self.xs();
        let max_y = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, y)| y.abs()))
            .fold(0.0f64, f64::max);
        let decimals = if max_y >= 1000.0 {
            1
        } else if max_y >= 1.0 {
            3
        } else {
            6
        };
        let mut out = String::new();
        writeln!(out, "# {}", self.title).expect("write to string");
        let mut header = format!("{:>12}", self.x_label);
        for s in &self.series {
            header.push_str(&format!(" {:>18}", s.name));
        }
        writeln!(out, "{header}").expect("write to string");
        for x in xs {
            let mut row = format!("{x:>12.0}");
            for s in &self.series {
                match s.at(x) {
                    Some(y) => row.push_str(&format!(" {y:>18.decimals$}")),
                    None => row.push_str(&format!(" {:>18}", "-")),
                }
            }
            writeln!(out, "{row}").expect("write to string");
        }
        out
    }

    /// Render CSV (header `x,series1,series2,…`).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let xs = self.xs();
        let mut out = String::new();
        let names: Vec<&str> = self.series.iter().map(|s| s.name.as_str()).collect();
        writeln!(out, "{},{}", self.x_label, names.join(",")).expect("write to string");
        for x in xs {
            let mut row = format!("{x}");
            for s in &self.series {
                row.push(',');
                if let Some(y) = s.at(x) {
                    row.push_str(&format!("{y}"));
                }
            }
            writeln!(out, "{row}").expect("write to string");
        }
        out
    }

    /// JSON form (serde).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X", "threads", "rate");
        t.series_mut("A").push(32.0, 100.0);
        t.series_mut("A").push(64.0, 180.0);
        t.series_mut("B").push(32.0, 90.0);
        t
    }

    #[test]
    fn series_lookup() {
        let t = sample();
        assert_eq!(t.series[0].at(32.0), Some(100.0));
        assert_eq!(t.series[1].at(64.0), None);
        assert_eq!(t.xs(), vec![32.0, 64.0]);
    }

    #[test]
    fn text_table_contains_all_points() {
        let txt = sample().to_text();
        assert!(txt.contains("Fig X"));
        assert!(txt.contains("100.0"));
        assert!(txt.contains("180.0"));
        // Missing B@64 shown as dash.
        assert!(txt.lines().last().expect("non-empty").contains('-'));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("threads,A,B"));
        assert_eq!(lines.next(), Some("32,100,90"));
        assert_eq!(lines.next(), Some("64,180,"));
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let j = t.to_json();
        let back: Table = serde_json::from_str(&j).unwrap();
        assert_eq!(back.series, t.series);
    }

    #[test]
    fn record_rate_uses_system_and_threads() {
        let mut t = Table::new("f", "threads", "rate");
        t.record_rate(&RunMetrics {
            system: "S".into(),
            threads: 8,
            committed: 10,
            wall_secs: 2.0,
            ..Default::default()
        });
        assert_eq!(t.series_mut("S").at(8.0), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_monotone_x_rejected() {
        let mut s = Series::new("s");
        s.push(2.0, 1.0);
        s.push(1.0, 1.0);
    }
}
