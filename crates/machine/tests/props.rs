//! Property-based tests of the machine scheduler: no task is ever lost, all
//! work is conserved, and runs are deterministic, under random task mixes
//! and machine shapes.

use machine::{Ctx, Machine, MachineConfig, Step, Task, WorkTag};
use proptest::prelude::*;

/// A task performing a fixed schedule of work slices, yields, and sleeps.
struct Script {
    ops: Vec<ScriptOp>,
    pos: usize,
}

#[derive(Debug, Clone, Copy)]
enum ScriptOp {
    Work(u64),
    Yield,
    Sleep(u64),
}

impl Task for Script {
    fn step(&mut self, _ctx: &mut Ctx<'_>) -> Step {
        let Some(&op) = self.ops.get(self.pos) else {
            return Step::Done;
        };
        self.pos += 1;
        match op {
            ScriptOp::Work(c) => Step::work(c, WorkTag::Sim),
            ScriptOp::Yield => Step::Yield,
            ScriptOp::Sleep(ns) => Step::Sleep(ns),
        }
    }
}

fn arb_script() -> impl Strategy<Value = Vec<ScriptOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..5000).prop_map(ScriptOp::Work),
            Just(ScriptOp::Yield),
            (1u64..20_000).prop_map(ScriptOp::Sleep),
        ],
        1..20,
    )
}

fn total_work(ops: &[ScriptOp]) -> u64 {
    ops.iter()
        .map(|op| match op {
            ScriptOp::Work(c) => *c,
            _ => 0,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Every task finishes, and the exact requested work is accounted.
    #[test]
    fn work_is_conserved(
        scripts in prop::collection::vec(arb_script(), 1..8),
        cores in 1usize..4,
        smt in 1usize..3,
        pin_mask in any::<u8>(),
    ) {
        let mut cfg = MachineConfig::small(cores, smt);
        cfg.quantum = 10_000;
        let mut m = Machine::new(cfg);
        for (i, ops) in scripts.iter().enumerate() {
            let pin = if pin_mask & (1 << (i % 8)) != 0 {
                Some(i % cores)
            } else {
                None
            };
            m.add_task(
                Box::new(Script { ops: ops.clone(), pos: 0 }),
                format!("t{i}"),
                pin,
            );
        }
        let r = m.run(None).expect("no deadlock possible");
        prop_assert!(r.tasks.iter().all(|t| t.finished));
        for (i, ops) in scripts.iter().enumerate() {
            prop_assert_eq!(
                r.tasks[i].work_for(WorkTag::Sim),
                total_work(ops),
                "task {} work accounting", i
            );
        }
    }

    /// Same configuration → bit-identical report.
    #[test]
    fn machine_is_deterministic(
        scripts in prop::collection::vec(arb_script(), 1..6),
        cores in 1usize..4,
    ) {
        let build = || {
            let mut cfg = MachineConfig::small(cores, 2);
            cfg.quantum = 7_000;
            let mut m = Machine::new(cfg);
            for (i, ops) in scripts.iter().enumerate() {
                m.add_task(Box::new(Script { ops: ops.clone(), pos: 0 }), format!("t{i}"), None);
            }
            m.run(None).expect("completes")
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.virtual_ns, b.virtual_ns);
        prop_assert_eq!(a.ctx_switches, b.ctx_switches);
        prop_assert_eq!(a.migrations, b.migrations);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            prop_assert_eq!(x.cpu_time, y.cpu_time);
            prop_assert_eq!(x.work, y.work);
        }
    }

    /// Virtual time is bounded below by the critical path: a machine can
    /// never finish faster than the largest single-task work total, and
    /// never faster than total work spread over all contexts at peak
    /// throughput.
    #[test]
    fn virtual_time_lower_bounds(
        scripts in prop::collection::vec(arb_script(), 1..6),
        cores in 1usize..4,
    ) {
        let cfg = MachineConfig::small(cores, 1);
        let mut m = Machine::new(cfg);
        for (i, ops) in scripts.iter().enumerate() {
            m.add_task(Box::new(Script { ops: ops.clone(), pos: 0 }), format!("t{i}"), None);
        }
        let r = m.run(None).expect("completes");
        let per_task_max = scripts.iter().map(|s| total_work(s)).max().unwrap_or(0);
        let total: u64 = scripts.iter().map(|s| total_work(s)).sum();
        prop_assert!(r.virtual_ns >= per_task_max, "{} < {}", r.virtual_ns, per_task_max);
        prop_assert!(
            r.virtual_ns >= total / cores as u64,
            "{} < {}", r.virtual_ns, total / cores as u64
        );
    }
}
