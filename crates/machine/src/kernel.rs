//! The machine kernel: hardware contexts, runqueues, the CFS-like scheduler,
//! synchronization objects, and the discrete-event executor state.
//!
//! The kernel owns everything *except* the task bodies themselves — those
//! live in [`crate::Machine`] so that a running task can receive `&mut
//! Kernel` through [`crate::task::Ctx`] without aliasing.

use crate::config::MachineConfig;
use crate::report::{CpuReport, Report, TaskReport};
use crate::task::{BarrierId, MutexId, SemId, TaskId, WorkTag};
use std::collections::{BinaryHeap, VecDeque};

/// Scheduler state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TState {
    /// Waiting in the runqueue of `cpu`.
    Runnable { cpu: usize },
    /// Executing on `cpu` in SMT slot `slot`.
    Running { cpu: usize, slot: usize },
    /// Blocked on a synchronization object or sleeping.
    Blocked,
    /// Finished.
    Done,
}

/// Why a running task will block when its in-flight syscall completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PendingBlock {
    None,
    /// Will block unless `woken` was set meanwhile.
    Block,
    /// Acquired immediately; continue.
    Acquired,
}

#[derive(Debug)]
pub(crate) struct TaskMeta {
    pub name: String,
    pub state: TState,
    /// Pinned core, or `None` (kernel balances freely).
    pub pin: Option<usize>,
    /// Core the task last executed on (for migration-cost accounting).
    pub last_cpu: Option<usize>,
    /// CPU time consumed so far while its in-flight quantum ran.
    pub ran_in_quantum: u64,
    /// One-shot extra cost charged to the next slice (context switch /
    /// migration).
    pub extra_cost: u64,
    /// Outcome of the blocking syscall currently in flight.
    pub pending: PendingBlock,
    /// Set by a wake that raced with an in-flight blocking syscall.
    pub woken: bool,
    /// Total scaled CPU time.
    pub cpu_time: u64,
    /// Raw work units ("instructions") per attribution tag.
    pub work: [u64; 5],
    /// Scaled CPU time per attribution tag.
    pub time_by_tag: [u64; 5],
    /// Raw work units spent on kernel overheads (switches, migrations).
    pub overhead_work: u64,
}

#[derive(Debug, Default)]
struct Cpu {
    /// SMT slots; `Some(task)` when busy.
    slots: Vec<Option<TaskId>>,
    /// Last task each slot executed (context-switch accounting).
    last: Vec<Option<TaskId>>,
    busy: usize,
    runq: VecDeque<TaskId>,
    busy_time: u64,
    /// Time of the last busy-count change (for busy_time integration).
    last_change: u64,
}

#[derive(Debug)]
struct Sem {
    count: u32,
    cap: u32,
    waiters: VecDeque<TaskId>,
}

#[derive(Debug)]
struct Barrier {
    expected: usize,
    arrived: Vec<TaskId>,
    generation: u64,
}

#[derive(Debug)]
struct MutexObj {
    owner: Option<TaskId>,
    waiters: VecDeque<TaskId>,
}

/// Discrete events driving the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ev {
    /// Call `step()` on the task (it holds a context).
    RunStep(TaskId),
    /// The task's in-flight slice finished; account and decide what's next.
    SliceDone(TaskId),
    /// Wake from `Sleep`.
    Wake(TaskId),
    /// Periodic idle-balancing pass.
    LoadBalance,
}

#[derive(Debug, PartialEq, Eq)]
struct QueuedEv {
    time: u64,
    seq: u64,
    ev: Ev,
}

// Min-heap by (time, seq).
impl Ord for QueuedEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl PartialOrd for QueuedEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Error returned when every live task is blocked and no event can wake one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deadlock {
    /// Names of the blocked tasks.
    pub blocked: Vec<String>,
    /// Virtual time of detection.
    pub at: u64,
}

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadlock at t={}: blocked tasks {:?}",
            self.at, self.blocked
        )
    }
}
impl std::error::Error for Deadlock {}

/// Kernel state (see module docs).
pub struct Kernel {
    pub(crate) cfg: MachineConfig,
    now: u64,
    seq: u64,
    events: BinaryHeap<QueuedEv>,
    /// Number of queued events that are not `LoadBalance` (deadlock probe).
    live_events: usize,
    pub(crate) meta: Vec<TaskMeta>,
    cpus: Vec<Cpu>,
    sems: Vec<Sem>,
    barriers: Vec<Barrier>,
    mutexes: Vec<MutexObj>,
    done_count: usize,
    ctx_switches: u64,
    migrations: u64,
}

impl Kernel {
    pub(crate) fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let cpus = (0..cfg.num_cores)
            .map(|_| Cpu {
                slots: vec![None; cfg.smt_ways],
                last: vec![None; cfg.smt_ways],
                ..Default::default()
            })
            .collect();
        Kernel {
            cfg,
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            live_events: 0,
            meta: Vec::new(),
            cpus,
            sems: Vec::new(),
            barriers: Vec::new(),
            mutexes: Vec::new(),
            done_count: 0,
            ctx_switches: 0,
            migrations: 0,
        }
    }

    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    #[inline]
    pub(crate) fn set_now(&mut self, t: u64) {
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
    }

    pub(crate) fn push_event(&mut self, time: u64, ev: Ev) {
        if ev != Ev::LoadBalance {
            self.live_events += 1;
        }
        self.seq += 1;
        self.events.push(QueuedEv {
            time,
            seq: self.seq,
            ev,
        });
    }

    pub(crate) fn pop_event(&mut self) -> Option<(u64, Ev)> {
        let q = self.events.pop()?;
        if q.ev != Ev::LoadBalance {
            self.live_events -= 1;
        }
        Some((q.time, q.ev))
    }

    #[inline]
    pub(crate) fn live_events(&self) -> usize {
        self.live_events
    }

    #[inline]
    pub(crate) fn done_count(&self) -> usize {
        self.done_count
    }

    /// Register a task; returns its id. `pin` optionally pins it to a core.
    pub(crate) fn add_task_meta(&mut self, name: String, pin: Option<usize>) -> TaskId {
        if let Some(c) = pin {
            assert!(c < self.cfg.num_cores, "pin target {c} out of range");
        }
        let id = TaskId(self.meta.len() as u32);
        self.meta.push(TaskMeta {
            name,
            state: TState::Blocked, // made runnable at machine start
            pin,
            last_cpu: None,
            ran_in_quantum: 0,
            extra_cost: 0,
            pending: PendingBlock::None,
            woken: false,
            cpu_time: 0,
            work: [0; 5],
            time_by_tag: [0; 5],
            overhead_work: 0,
        });
        id
    }

    /// Create a semaphore with an initial count and a saturation cap
    /// (binary semaphore: `cap = 1`).
    pub fn add_sem(&mut self, initial: u32, cap: u32) -> SemId {
        assert!(cap >= 1 && initial <= cap);
        let id = SemId(self.sems.len() as u32);
        self.sems.push(Sem {
            count: initial,
            cap,
            waiters: VecDeque::new(),
        });
        id
    }

    /// Tokens currently held by a semaphore plus its blocked-waiter count
    /// (diagnostics for stall dumps).
    pub fn sem_state(&self, sem: SemId) -> (u32, usize) {
        let s = &self.sems[sem.0 as usize];
        (s.count, s.waiters.len())
    }

    /// Create a barrier completing after `expected` arrivals.
    pub fn add_barrier(&mut self, expected: usize) -> BarrierId {
        assert!(expected >= 1);
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push(Barrier {
            expected,
            arrived: Vec::new(),
            generation: 0,
        });
        id
    }

    /// Create a mutex.
    pub fn add_mutex(&mut self) -> MutexId {
        let id = MutexId(self.mutexes.len() as u32);
        self.mutexes.push(MutexObj {
            owner: None,
            waiters: VecDeque::new(),
        });
        id
    }

    /// Core a task is currently running on.
    pub fn core_of(&self, task: TaskId) -> Option<usize> {
        match self.meta[task.index()].state {
            TState::Running { cpu, .. } => Some(cpu),
            _ => None,
        }
    }

    pub fn state_of(&self, task: TaskId) -> TState {
        self.meta[task.index()].state
    }

    // ---- scheduling -----------------------------------------------------

    fn cpu_load(&self, cpu: usize) -> usize {
        self.cpus[cpu].busy + self.cpus[cpu].runq.len()
    }

    /// Place a task in a runqueue and dispatch if a context is free.
    pub(crate) fn make_runnable(&mut self, task: TaskId) {
        let m = &self.meta[task.index()];
        debug_assert!(
            matches!(m.state, TState::Blocked),
            "make_runnable on {:?} in state {:?}",
            m.name,
            m.state
        );
        let cpu = match m.pin {
            Some(c) => c,
            None => {
                // Wake balancing: prefer the last core (cache affinity) if it
                // is the least loaded; otherwise least-loaded core overall.
                let mut best = m.last_cpu.unwrap_or(0).min(self.cfg.num_cores - 1);
                let mut best_load = self.cpu_load(best);
                for c in 0..self.cfg.num_cores {
                    let l = self.cpu_load(c);
                    if l < best_load {
                        best = c;
                        best_load = l;
                    }
                }
                best
            }
        };
        self.meta[task.index()].state = TState::Runnable { cpu };
        self.cpus[cpu].runq.push_back(task);
        self.try_dispatch(cpu);
    }

    /// Fill idle SMT slots of `cpu` from its runqueue. When the local queue
    /// is empty, pull a waiting *unpinned* task from the most loaded core
    /// (CFS "newidle" balancing) — this is what lets the No-Affinity policy
    /// eventually find idle cores, at a migration cost.
    pub(crate) fn try_dispatch(&mut self, cpu: usize) {
        while self.cpus[cpu].busy < self.cfg.smt_ways {
            if self.cpus[cpu].runq.is_empty() && !self.steal_into(cpu) {
                break;
            }
            let Some(task) = self.cpus[cpu].runq.pop_front() else {
                break;
            };
            let slot = self.cpus[cpu]
                .slots
                .iter()
                .position(Option::is_none)
                .expect("busy < smt_ways implies a free slot");
            self.touch_busy(cpu);
            self.cpus[cpu].slots[slot] = Some(task);
            self.cpus[cpu].busy += 1;
            let m = &mut self.meta[task.index()];
            m.state = TState::Running { cpu, slot };
            m.ran_in_quantum = 0;
            if self.cpus[cpu].last[slot] != Some(task) {
                m.extra_cost += self.cfg.cost.context_switch;
                self.ctx_switches += 1;
            }
            if m.last_cpu.is_some() && m.last_cpu != Some(cpu) {
                m.extra_cost += self.cfg.cost.migration;
                self.migrations += 1;
            }
            m.last_cpu = Some(cpu);
            self.cpus[cpu].last[slot] = Some(task);
            self.push_event(self.now, Ev::RunStep(task));
        }
    }

    /// Pull one unpinned waiting task from the most loaded other core into
    /// `cpu`'s runqueue. Returns whether a task was stolen.
    fn steal_into(&mut self, cpu: usize) -> bool {
        let mut donor: Option<(usize, usize)> = None; // (cpu, qlen)
        for c in 0..self.cfg.num_cores {
            if c == cpu {
                continue;
            }
            let qlen = self.cpus[c].runq.len();
            if qlen > donor.map_or(0, |(_, l)| l)
                && self.cpus[c]
                    .runq
                    .iter()
                    .any(|&t| self.meta[t.index()].pin.is_none())
            {
                donor = Some((c, qlen));
            }
        }
        let Some((d, _)) = donor else {
            return false;
        };
        let pos = self.cpus[d]
            .runq
            .iter()
            .position(|&t| self.meta[t.index()].pin.is_none())
            .expect("donor has an unpinned task");
        let task = self.cpus[d].runq.remove(pos).expect("valid position");
        self.meta[task.index()].state = TState::Runnable { cpu };
        self.cpus[cpu].runq.push_back(task);
        true
    }

    /// Integrate busy-time before a busy-count change on `cpu`.
    fn touch_busy(&mut self, cpu: usize) {
        let c = &mut self.cpus[cpu];
        c.busy_time += (self.now - c.last_change) * c.busy as u64;
        c.last_change = self.now;
    }

    /// Release the context a running task occupies.
    pub(crate) fn free_context(&mut self, task: TaskId) {
        let TState::Running { cpu, slot } = self.meta[task.index()].state else {
            panic!(
                "free_context on non-running task {}",
                self.meta[task.index()].name
            );
        };
        self.touch_busy(cpu);
        self.cpus[cpu].slots[slot] = None;
        self.cpus[cpu].busy -= 1;
        self.meta[task.index()].state = TState::Blocked;
        self.try_dispatch(cpu);
    }

    /// Charge `cost` work units (plus any one-shot extra) to a running task;
    /// returns the scaled duration.
    pub(crate) fn charge(&mut self, task: TaskId, cost: u64, tag: WorkTag) -> u64 {
        let TState::Running { cpu, .. } = self.meta[task.index()].state else {
            panic!("charge on non-running task");
        };
        let busy = self.cpus[cpu].busy.max(1);
        let speed = self.cfg.smt_speed(busy);
        let m = &mut self.meta[task.index()];
        let extra = m.extra_cost;
        m.extra_cost = 0;
        m.work[tag.index()] += cost;
        m.overhead_work += extra;
        let duration = (((cost + extra) as f64) / speed).ceil() as u64;
        m.cpu_time += duration;
        m.time_by_tag[tag.index()] += duration;
        m.ran_in_quantum += duration;
        duration
    }

    // ---- synchronization ------------------------------------------------

    /// Attempt a semaphore wait for a running task. Returns the pending
    /// outcome recorded for its in-flight syscall.
    pub(crate) fn sem_wait_begin(&mut self, task: TaskId, sem: SemId) {
        let s = &mut self.sems[sem.0 as usize];
        let m = &mut self.meta[task.index()];
        m.woken = false;
        if s.count > 0 {
            s.count -= 1;
            m.pending = PendingBlock::Acquired;
        } else {
            s.waiters.push_back(task);
            m.pending = PendingBlock::Block;
        }
    }

    /// Post a semaphore: wake the first waiter or bump the count.
    pub fn sem_post(&mut self, sem: SemId) {
        let s = &mut self.sems[sem.0 as usize];
        if let Some(w) = s.waiters.pop_front() {
            self.wake(w);
        } else {
            s.count = (s.count + 1).min(s.cap);
        }
    }

    pub(crate) fn mutex_lock_begin(&mut self, task: TaskId, mutex: MutexId) {
        let mx = &mut self.mutexes[mutex.0 as usize];
        let m = &mut self.meta[task.index()];
        m.woken = false;
        if mx.owner.is_none() {
            mx.owner = Some(task);
            m.pending = PendingBlock::Acquired;
        } else {
            assert_ne!(mx.owner, Some(task), "recursive mutex lock");
            mx.waiters.push_back(task);
            m.pending = PendingBlock::Block;
        }
    }

    /// Unlock a mutex, transferring ownership to the first waiter.
    pub fn mutex_unlock(&mut self, mutex: MutexId, me: TaskId) {
        let mx = &mut self.mutexes[mutex.0 as usize];
        assert_eq!(mx.owner, Some(me), "unlock of mutex not held");
        if let Some(w) = mx.waiters.pop_front() {
            mx.owner = Some(w);
            self.wake(w);
        } else {
            mx.owner = None;
        }
    }

    pub(crate) fn barrier_arrive(&mut self, task: TaskId, barrier: BarrierId) {
        {
            let m = &mut self.meta[task.index()];
            m.woken = false;
            m.pending = PendingBlock::Block;
        }
        self.barriers[barrier.0 as usize].arrived.push(task);
        self.barrier_check(barrier);
    }

    /// Adjust the arrival count that completes the current generation.
    pub fn barrier_set_expected(&mut self, barrier: BarrierId, expected: usize) {
        assert!(expected >= 1);
        self.barriers[barrier.0 as usize].expected = expected;
        self.barrier_check(barrier);
    }

    pub fn barrier_generation(&self, barrier: BarrierId) -> u64 {
        self.barriers[barrier.0 as usize].generation
    }

    fn barrier_check(&mut self, barrier: BarrierId) {
        let b = &mut self.barriers[barrier.0 as usize];
        if b.arrived.len() >= b.expected {
            b.generation += 1;
            let arrived = std::mem::take(&mut b.arrived);
            for t in arrived {
                self.wake(t);
            }
        }
    }

    /// Wake a task: either it is parked (make it runnable) or its blocking
    /// syscall is still in flight (flag it to continue).
    fn wake(&mut self, task: TaskId) {
        match self.meta[task.index()].state {
            TState::Blocked => self.make_runnable(task),
            TState::Running { .. } | TState::Runnable { .. } => {
                self.meta[task.index()].woken = true;
            }
            TState::Done => panic!("waking finished task {}", self.meta[task.index()].name),
        }
    }

    /// Re-pin (or unpin) a task. Running tasks migrate at their next slice
    /// boundary; queued tasks are moved immediately.
    pub fn set_affinity(&mut self, task: TaskId, core: Option<usize>) {
        if let Some(c) = core {
            assert!(c < self.cfg.num_cores, "core {c} out of range");
        }
        let old_state = self.meta[task.index()].state;
        self.meta[task.index()].pin = core;
        if let TState::Runnable { cpu } = old_state {
            if core != Some(cpu) && core.is_some() {
                // Remove from the old runqueue and re-place.
                self.cpus[cpu].runq.retain(|&t| t != task);
                self.meta[task.index()].state = TState::Blocked;
                self.make_runnable(task);
            }
        }
    }

    /// Pin of a task (observability for tests).
    pub fn pin_of(&self, task: TaskId) -> Option<usize> {
        self.meta[task.index()].pin
    }

    // ---- slice lifecycle (driven by Machine) ----------------------------

    /// Handle the end of a slice for a task that stays runnable: preempt if
    /// its quantum expired and someone waits; otherwise let it continue.
    /// Also applies any pending re-pin. Returns `true` if the task should
    /// step again right now.
    pub(crate) fn slice_done_continue(&mut self, task: TaskId) -> bool {
        let TState::Running { cpu, .. } = self.meta[task.index()].state else {
            panic!("slice_done for non-running task");
        };
        let pin = self.meta[task.index()].pin;
        if let Some(target) = pin {
            if target != cpu {
                // Migrate to the newly pinned core.
                self.free_context(task);
                self.make_runnable(task);
                return false;
            }
        }
        if self.meta[task.index()].ran_in_quantum >= self.cfg.quantum
            && !self.cpus[cpu].runq.is_empty()
        {
            // Preempt: requeue at the tail.
            self.free_context(task);
            self.meta[task.index()].state = TState::Runnable { cpu };
            self.cpus[cpu].runq.push_back(task);
            self.try_dispatch(cpu);
            return false;
        }
        if self.meta[task.index()].ran_in_quantum >= self.cfg.quantum {
            self.meta[task.index()].ran_in_quantum = 0;
        }
        true
    }

    /// Take (and clear) the pending-block outcome of the task's in-flight
    /// syscall.
    pub(crate) fn take_pending(&mut self, task: TaskId) -> PendingBlock {
        std::mem::replace(&mut self.meta[task.index()].pending, PendingBlock::None)
    }

    /// Take (and clear) the raced-wake flag.
    pub(crate) fn take_woken(&mut self, task: TaskId) -> bool {
        std::mem::take(&mut self.meta[task.index()].woken)
    }

    /// Requeue a (currently context-free) task at the tail of `cpu`'s
    /// runqueue (voluntary yield).
    pub(crate) fn requeue(&mut self, task: TaskId, cpu: usize) {
        debug_assert!(matches!(self.meta[task.index()].state, TState::Blocked));
        self.meta[task.index()].state = TState::Runnable { cpu };
        self.cpus[cpu].runq.push_back(task);
        self.try_dispatch(cpu);
    }

    /// Finish a task.
    pub(crate) fn finish(&mut self, task: TaskId) {
        self.free_context(task);
        self.meta[task.index()].state = TState::Done;
        self.done_count += 1;
    }

    /// CFS-like idle balance: move waiting unpinned tasks from overloaded
    /// runqueues to cores with idle contexts.
    #[allow(clippy::while_let_loop)] // symmetric break conditions read clearer
    pub(crate) fn load_balance(&mut self) {
        loop {
            let Some(recv) = (0..self.cfg.num_cores)
                .find(|&c| self.cpus[c].busy < self.cfg.smt_ways && self.cpus[c].runq.is_empty())
            else {
                break;
            };
            // Donor: the core with the longest runqueue holding an unpinned
            // task.
            let mut donor: Option<(usize, usize)> = None; // (cpu, qlen)
            for c in 0..self.cfg.num_cores {
                let qlen = self.cpus[c].runq.len();
                if qlen > donor.map_or(0, |(_, l)| l)
                    && self.cpus[c]
                        .runq
                        .iter()
                        .any(|&t| self.meta[t.index()].pin.is_none())
                {
                    donor = Some((c, qlen));
                }
            }
            let Some((d, _)) = donor else { break };
            let pos = self.cpus[d]
                .runq
                .iter()
                .position(|&t| self.meta[t.index()].pin.is_none())
                .expect("donor has an unpinned task");
            let task = self.cpus[d].runq.remove(pos).expect("valid position");
            self.meta[task.index()].state = TState::Runnable { cpu: recv };
            self.cpus[recv].runq.push_back(task);
            self.try_dispatch(recv);
        }
    }

    /// `true` while at least one task is runnable or running.
    pub(crate) fn any_active(&self) -> bool {
        self.meta
            .iter()
            .any(|m| matches!(m.state, TState::Runnable { .. } | TState::Running { .. }))
    }

    pub(crate) fn blocked_names(&self) -> Vec<String> {
        self.meta
            .iter()
            .filter(|m| matches!(m.state, TState::Blocked))
            .map(|m| m.name.clone())
            .collect()
    }

    /// Build the final report.
    pub(crate) fn report(&mut self) -> Report {
        for c in 0..self.cfg.num_cores {
            self.touch_busy(c);
        }
        Report {
            virtual_ns: self.now,
            ctx_switches: self.ctx_switches,
            migrations: self.migrations,
            tasks: self
                .meta
                .iter()
                .map(|m| TaskReport {
                    name: m.name.clone(),
                    cpu_time: m.cpu_time,
                    work: m.work,
                    time_by_tag: m.time_by_tag,
                    overhead_work: m.overhead_work,
                    finished: matches!(m.state, TState::Done),
                })
                .collect(),
            cpus: self
                .cpus
                .iter()
                .map(|c| CpuReport {
                    busy_time: c.busy_time,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queued_events_pop_in_time_then_fifo_order() {
        let mut k = Kernel::new(MachineConfig::small(1, 1));
        k.push_event(10, Ev::LoadBalance);
        k.push_event(5, Ev::Wake(TaskId(0)));
        k.push_event(5, Ev::Wake(TaskId(1)));
        assert_eq!(k.pop_event(), Some((5, Ev::Wake(TaskId(0)))));
        assert_eq!(k.pop_event(), Some((5, Ev::Wake(TaskId(1)))));
        assert_eq!(k.pop_event(), Some((10, Ev::LoadBalance)));
        assert_eq!(k.pop_event(), None);
    }

    #[test]
    fn live_event_counter_ignores_load_balance() {
        let mut k = Kernel::new(MachineConfig::small(1, 1));
        k.push_event(1, Ev::LoadBalance);
        assert_eq!(k.live_events(), 0);
        k.push_event(1, Ev::Wake(TaskId(0)));
        assert_eq!(k.live_events(), 1);
        k.pop_event();
        k.pop_event();
        assert_eq!(k.live_events(), 0);
    }

    #[test]
    fn sem_basic_counting() {
        let mut k = Kernel::new(MachineConfig::small(1, 1));
        let s = k.add_sem(1, 1);
        // Post on a full binary semaphore saturates.
        k.sem_post(s);
        assert_eq!(k.sems[0].count, 1);
    }

    #[test]
    #[should_panic(expected = "pin target")]
    fn pin_out_of_range_rejected() {
        let mut k = Kernel::new(MachineConfig::small(2, 1));
        k.add_task_meta("t".into(), Some(5));
    }
}
