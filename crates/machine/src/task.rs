//! The task abstraction: code that runs on the virtual machine.

use crate::kernel::Kernel;
use serde::{Deserialize, Serialize};

/// Task identifier (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Semaphore handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SemId(pub u32);

/// Barrier handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierId(pub u32);

/// Mutex handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MutexId(pub u32);

/// Attribution tag for CPU work, used to break down where each task's cycles
/// went (the paper's GVT-CPU-time and instruction-count tables need this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkTag {
    /// Useful event processing.
    Sim,
    /// GVT computation phases.
    Gvt,
    /// Scheduling management (activation/deactivation/affinity logic).
    Sched,
    /// Input-queue polling.
    Poll,
    /// Busy-wait spinning (e.g. inactive threads in asynchronous systems).
    Spin,
}

impl WorkTag {
    pub const ALL: [WorkTag; 5] = [
        WorkTag::Sim,
        WorkTag::Gvt,
        WorkTag::Sched,
        WorkTag::Poll,
        WorkTag::Spin,
    ];

    pub fn index(self) -> usize {
        match self {
            WorkTag::Sim => 0,
            WorkTag::Gvt => 1,
            WorkTag::Sched => 2,
            WorkTag::Poll => 3,
            WorkTag::Spin => 4,
        }
    }
}

/// What a task wants to do next, returned from [`Task::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Burn `cost` cycles of CPU attributed to `tag`, then step again.
    Work { cost: u64, tag: WorkTag },
    /// Decrement the semaphore, blocking until it is positive
    /// (`sem_wait`). Charges [`crate::config::CostModel::sem_op`].
    SemWait(SemId),
    /// Arrive at the barrier and block until the current generation
    /// completes. Charges `barrier_op`.
    BarrierWait(BarrierId),
    /// Acquire the mutex, blocking if held. Charges `mutex_op`.
    MutexLock(MutexId),
    /// Give up the CPU but stay runnable (requeued at the tail).
    Yield,
    /// Block for `ns` of virtual time without occupying a context.
    Sleep(u64),
    /// The task is finished.
    Done,
}

impl Step {
    /// Convenience constructor for tagged work.
    pub fn work(cost: u64, tag: WorkTag) -> Step {
        Step::Work { cost, tag }
    }
}

/// Code executed on the virtual machine.
///
/// `step` is called whenever the task holds a hardware context: it performs
/// one slice of real computation (mutating whatever state the task shares
/// with others through `Rc<RefCell<…>>`) and returns how much virtual CPU
/// that slice costs — or a blocking request. Side effects become visible at
/// call time while the cost extends into the future; with slice costs in the
/// microsecond range this approximation is far below the effects being
/// measured.
pub trait Task {
    /// Execute the next slice. `ctx` exposes kernel services (posting
    /// semaphores, changing affinity, reading the clock).
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step;
}

/// Kernel services available inside [`Task::step`].
pub struct Ctx<'a> {
    pub(crate) kernel: &'a mut Kernel,
    pub(crate) me: TaskId,
}

impl<'a> Ctx<'a> {
    /// This task's id.
    #[inline]
    pub fn me(&self) -> TaskId {
        self.me
    }

    /// Current virtual time (ns).
    #[inline]
    pub fn now(&self) -> u64 {
        self.kernel.now()
    }

    /// Post (release) a semaphore, waking one waiter if any. A binary
    /// semaphore: the count saturates at 1, as with the paper's `sem_locks`.
    pub fn sem_post(&mut self, sem: SemId) {
        self.kernel.sem_post(sem);
    }

    /// Release a mutex held by this task.
    ///
    /// # Panics
    /// Panics if the task does not hold the mutex.
    pub fn mutex_unlock(&mut self, mutex: MutexId) {
        self.kernel.mutex_unlock(mutex, self.me);
    }

    /// Set the number of arrivals that completes a barrier generation.
    /// Takes effect for the *current* generation (re-checked immediately).
    pub fn barrier_set_expected(&mut self, barrier: BarrierId, expected: usize) {
        self.kernel.barrier_set_expected(barrier, expected);
    }

    /// Pin `task` to a single core (like `sched_setaffinity` with one bit),
    /// or unpin it with `None`. Takes effect at the target's next scheduling
    /// boundary; a migration cost is charged when it changes cores.
    pub fn set_affinity(&mut self, task: TaskId, core: Option<usize>) {
        self.kernel.set_affinity(task, core);
    }

    /// Tokens held by a semaphore plus its blocked-waiter count
    /// (diagnostics; see [`crate::Kernel::sem_state`]).
    #[inline]
    pub fn sem_state(&self, sem: SemId) -> (u32, usize) {
        self.kernel.sem_state(sem)
    }

    /// Core this task is currently executing on.
    #[inline]
    pub fn current_core(&self) -> usize {
        self.kernel
            .core_of(self.me)
            .expect("a stepping task is always on a core")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_tag_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for t in WorkTag::ALL {
            assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn step_work_constructor() {
        assert_eq!(
            Step::work(5, WorkTag::Sim),
            Step::Work {
                cost: 5,
                tag: WorkTag::Sim
            }
        );
    }
}
