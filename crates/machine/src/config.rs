//! Machine model configuration.

use serde::{Deserialize, Serialize};

/// Cost model of the virtual machine, in abstract cycles ("virtual ns").
///
/// These constants only need to be *relatively* plausible: the reproduced
/// figures are committed-event-rate ratios between systems, which are driven
/// by who occupies hardware contexts and how long synchronization takes, not
/// by the absolute magnitude of any single cost. `bench/ablation` perturbs
/// them to show the figure shapes are robust.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of switching a hardware context between two different tasks.
    pub context_switch: u64,
    /// Extra cost charged to a task the first time it runs after migrating
    /// between cores (cache refill; also used by explicit re-pinning).
    pub migration: u64,
    /// Cost of a semaphore operation (wait/post) as seen by the caller.
    pub sem_op: u64,
    /// Cost of arriving at a barrier.
    pub barrier_op: u64,
    /// Cost of a mutex lock/unlock pair as seen by the caller.
    pub mutex_op: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            context_switch: 2_000,
            migration: 4_000,
            sem_op: 300,
            barrier_op: 150,
            mutex_op: 400,
        }
    }
}

/// Configuration of the simulated many-core machine.
///
/// The default models the paper's Intel Knights Landing 7230: 64 cores with
/// 4-way SMT (256 hardware thread contexts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of physical cores.
    pub num_cores: usize,
    /// SMT contexts per core.
    pub smt_ways: usize,
    /// Total core throughput with `k` busy contexts is `smt_total[k-1]`
    /// (each context then runs at `smt_total[k-1] / k`). Must be
    /// non-decreasing and start at 1.0.
    pub smt_total: Vec<f64>,
    /// Scheduling quantum in virtual ns (a running task is preempted after
    /// this much CPU time if others wait on its core's runqueue).
    pub quantum: u64,
    /// Period of the CFS-like idle-balance pass that migrates *unpinned*
    /// waiting tasks to idle cores.
    pub load_balance_interval: u64,
    /// Overhead costs.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_cores: 64,
            smt_ways: 4,
            smt_total: vec![1.0, 1.6, 1.85, 2.0],
            quantum: 200_000,
            load_balance_interval: 400_000,
            cost: CostModel::default(),
        }
    }
}

impl MachineConfig {
    /// A small machine for unit tests: `cores` cores, `smt` ways.
    pub fn small(cores: usize, smt: usize) -> Self {
        let mut smt_total = vec![1.0];
        for k in 2..=smt {
            // Diminishing returns, capped at 2x.
            smt_total.push((1.0 + 0.4 * (k as f64 - 1.0)).min(2.0));
        }
        MachineConfig {
            num_cores: cores,
            smt_ways: smt,
            smt_total,
            ..Default::default()
        }
    }

    /// Total hardware thread contexts.
    pub fn hw_threads(&self) -> usize {
        self.num_cores * self.smt_ways
    }

    /// Per-context execution speed when `busy` contexts of a core are busy.
    pub fn smt_speed(&self, busy: usize) -> f64 {
        assert!(busy >= 1 && busy <= self.smt_ways, "busy={busy}");
        self.smt_total[busy - 1] / busy as f64
    }

    /// Validate invariants; called by the kernel at construction.
    pub fn validate(&self) {
        assert!(self.num_cores > 0, "need at least one core");
        assert!(self.smt_ways > 0, "need at least one SMT way");
        assert_eq!(
            self.smt_total.len(),
            self.smt_ways,
            "smt_total must have one entry per SMT way"
        );
        assert!(
            (self.smt_total[0] - 1.0).abs() < 1e-9,
            "single-context throughput must be 1.0"
        );
        for w in self.smt_total.windows(2) {
            assert!(w[1] >= w[0], "smt_total must be non-decreasing");
        }
        assert!(self.quantum > 0, "quantum must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_defaults() {
        let c = MachineConfig::default();
        c.validate();
        assert_eq!(c.hw_threads(), 256);
        assert!((c.smt_speed(1) - 1.0).abs() < 1e-12);
        assert!((c.smt_speed(2) - 0.8).abs() < 1e-12);
        assert!((c.smt_speed(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn small_machine_valid() {
        for smt in 1..=4 {
            MachineConfig::small(2, smt).validate();
        }
    }

    #[test]
    #[should_panic(expected = "smt_total")]
    fn mismatched_smt_table_rejected() {
        let mut c = MachineConfig::default();
        c.smt_total.pop();
        c.validate();
    }

    #[test]
    fn speed_decreases_with_sharing() {
        let c = MachineConfig::default();
        let mut last = f64::INFINITY;
        for k in 1..=4 {
            let s = c.smt_speed(k);
            assert!(s < last);
            last = s;
        }
    }
}
