//! The machine driver: owns the task bodies and runs the event loop.

use crate::config::MachineConfig;
use crate::kernel::{Deadlock, Ev, Kernel, PendingBlock, TState};
use crate::report::Report;
use crate::task::{Ctx, Step, Task, TaskId, WorkTag};

/// A simulated many-core machine executing a fixed set of [`Task`]s.
///
/// ```
/// use machine::{Machine, MachineConfig, Step, Task, Ctx, WorkTag};
///
/// struct Busy(u32);
/// impl Task for Busy {
///     fn step(&mut self, _ctx: &mut Ctx<'_>) -> Step {
///         if self.0 == 0 { return Step::Done; }
///         self.0 -= 1;
///         Step::work(1_000, WorkTag::Sim)
///     }
/// }
///
/// let mut m = Machine::new(MachineConfig::small(1, 1));
/// m.add_task(Box::new(Busy(5)), "busy", None);
/// let report = m.run(None).unwrap();
/// assert_eq!(report.virtual_ns, 5_000 + 2_000 /* initial context switch */);
/// ```
pub struct Machine {
    tasks: Vec<Option<Box<dyn Task>>>,
    kernel: Kernel,
    started: bool,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            tasks: Vec::new(),
            kernel: Kernel::new(cfg),
            started: false,
        }
    }

    /// Access to kernel services while building the system (creating
    /// semaphores, barriers, mutexes).
    pub fn kernel(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Read-only kernel access (observability in tests).
    pub fn kernel_ref(&self) -> &Kernel {
        &self.kernel
    }

    /// Build a report from the machine's current state. Meant for salvaging
    /// partial accounting after [`Machine::run`] returned a deadlock; after
    /// a successful run prefer the returned report.
    pub fn report_now(&mut self) -> Report {
        self.kernel.report()
    }

    /// Add a task before the machine starts. `pin` optionally pins it to a
    /// core from the outset (constant affinity).
    pub fn add_task(
        &mut self,
        task: Box<dyn Task>,
        name: impl Into<String>,
        pin: Option<usize>,
    ) -> TaskId {
        assert!(!self.started, "cannot add tasks after the machine started");
        let id = self.kernel.add_task_meta(name.into(), pin);
        self.tasks.push(Some(task));
        id
    }

    /// Run until every task is done, a deadlock is detected, or virtual time
    /// exceeds `limit`.
    pub fn run(&mut self, limit: Option<u64>) -> Result<Report, Deadlock> {
        assert!(!self.started, "run may only be called once");
        self.started = true;
        let n = self.tasks.len();
        assert!(n > 0, "no tasks to run");
        for i in 0..n {
            self.kernel.make_runnable(TaskId(i as u32));
        }
        let lb = self.kernel.cfg.load_balance_interval;
        self.kernel.push_event(lb, Ev::LoadBalance);

        while let Some((t, ev)) = self.kernel.pop_event() {
            self.kernel.set_now(t);
            if let Some(lim) = limit {
                if t > lim {
                    break;
                }
            }
            match ev {
                Ev::RunStep(task) => self.exec_step(task),
                Ev::SliceDone(task) => self.slice_done(task),
                Ev::Wake(task) => self.kernel.make_runnable(task),
                Ev::LoadBalance => {
                    self.kernel.load_balance();
                    if self.kernel.done_count() < n {
                        if self.kernel.live_events() == 0 && !self.kernel.any_active() {
                            return Err(Deadlock {
                                blocked: self.kernel.blocked_names(),
                                at: self.kernel.now(),
                            });
                        }
                        let next = self.kernel.now() + lb;
                        self.kernel.push_event(next, Ev::LoadBalance);
                    }
                }
            }
            if self.kernel.done_count() == n {
                break;
            }
            // Deadlock probe without waiting for the next LB tick.
            if self.kernel.live_events() == 0 && !self.kernel.any_active() {
                return Err(Deadlock {
                    blocked: self.kernel.blocked_names(),
                    at: self.kernel.now(),
                });
            }
        }
        Ok(self.kernel.report())
    }

    /// Call `step()` on a task holding a context and translate the result
    /// into kernel bookkeeping.
    fn exec_step(&mut self, task: TaskId) {
        let mut body = self.tasks[task.index()].take().expect("task body present");
        let step = body.step(&mut Ctx {
            kernel: &mut self.kernel,
            me: task,
        });
        self.tasks[task.index()] = Some(body);
        let now = self.kernel.now();
        let cost = self.kernel.cfg.cost.clone();
        match step {
            Step::Work { cost, tag } => {
                let dur = self.kernel.charge(task, cost, tag);
                self.kernel.push_event(now + dur, Ev::SliceDone(task));
            }
            Step::SemWait(s) => {
                self.kernel.sem_wait_begin(task, s);
                let dur = self.kernel.charge(task, cost.sem_op, WorkTag::Sched);
                self.kernel.push_event(now + dur, Ev::SliceDone(task));
            }
            Step::MutexLock(mx) => {
                self.kernel.mutex_lock_begin(task, mx);
                let dur = self.kernel.charge(task, cost.mutex_op, WorkTag::Sched);
                self.kernel.push_event(now + dur, Ev::SliceDone(task));
            }
            Step::BarrierWait(b) => {
                // Charge first, then arrive: if this arrival completes the
                // generation, peers wake at the post-charge timestamp.
                let dur = self.kernel.charge(task, cost.barrier_op, WorkTag::Gvt);
                self.kernel.barrier_arrive(task, b);
                self.kernel.push_event(now + dur, Ev::SliceDone(task));
            }
            Step::Yield => {
                // Preempt unconditionally.
                let TState::Running { cpu, .. } = self.kernel.state_of(task) else {
                    unreachable!("stepping task is running");
                };
                self.kernel.free_context(task);
                self.kernel.requeue(task, cpu);
            }
            Step::Sleep(ns) => {
                self.kernel.free_context(task);
                self.kernel.push_event(now + ns, Ev::Wake(task));
            }
            Step::Done => {
                self.kernel.finish(task);
            }
        }
    }

    /// A slice (work or in-flight syscall) completed.
    fn slice_done(&mut self, task: TaskId) {
        match self.kernel.take_pending(task) {
            PendingBlock::None | PendingBlock::Acquired => {
                // Plain work or an immediately-acquired syscall.
                if self.kernel.slice_done_continue(task) {
                    let now = self.kernel.now();
                    self.kernel.push_event(now, Ev::RunStep(task));
                }
            }
            PendingBlock::Block => {
                if self.kernel.take_woken(task) {
                    // Wake raced with the blocking syscall: continue.
                    if self.kernel.slice_done_continue(task) {
                        let now = self.kernel.now();
                        self.kernel.push_event(now, Ev::RunStep(task));
                    }
                } else {
                    self.kernel.free_context(task);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{BarrierId, SemId};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Busy {
        slices: u32,
        cost: u64,
    }
    impl Task for Busy {
        fn step(&mut self, _ctx: &mut Ctx<'_>) -> Step {
            if self.slices == 0 {
                return Step::Done;
            }
            self.slices -= 1;
            Step::work(self.cost, WorkTag::Sim)
        }
    }

    #[test]
    fn single_task_time_is_work_plus_switch() {
        let mut m = Machine::new(MachineConfig::small(1, 1));
        m.add_task(
            Box::new(Busy {
                slices: 4,
                cost: 1000,
            }),
            "b",
            None,
        );
        let r = m.run(None).unwrap();
        // 4 × 1000 work + one context switch (2000) at dispatch.
        assert_eq!(r.virtual_ns, 6000);
        assert_eq!(r.tasks[0].work_for(WorkTag::Sim), 4000);
        assert_eq!(r.tasks[0].overhead_work, 2000);
        assert!(r.tasks[0].finished);
    }

    #[test]
    fn two_tasks_one_core_share_by_quantum() {
        // One single-context core: tasks alternate by quantum; completion
        // takes ~2× a single task (plus switches).
        let mut cfg = MachineConfig::small(1, 1);
        cfg.quantum = 5_000;
        let mut m = Machine::new(cfg);
        m.add_task(
            Box::new(Busy {
                slices: 10,
                cost: 1000,
            }),
            "a",
            None,
        );
        m.add_task(
            Box::new(Busy {
                slices: 10,
                cost: 1000,
            }),
            "b",
            None,
        );
        let r = m.run(None).unwrap();
        assert!(r.virtual_ns >= 20_000, "vns={}", r.virtual_ns);
        assert!(r.ctx_switches >= 4, "switches={}", r.ctx_switches);
        assert!(r.tasks.iter().all(|t| t.finished));
    }

    #[test]
    fn two_tasks_two_cores_run_in_parallel() {
        let mut m = Machine::new(MachineConfig::small(2, 1));
        m.add_task(
            Box::new(Busy {
                slices: 10,
                cost: 1000,
            }),
            "a",
            None,
        );
        m.add_task(
            Box::new(Busy {
                slices: 10,
                cost: 1000,
            }),
            "b",
            None,
        );
        let r = m.run(None).unwrap();
        // Both finish in ~12k (10k work + switch), not 24k.
        assert!(r.virtual_ns < 15_000, "vns={}", r.virtual_ns);
    }

    #[test]
    fn smt_sharing_slows_both_contexts() {
        // 1 core × 2 SMT: total throughput 1.4 → each runs at 0.7.
        let mut m = Machine::new(MachineConfig::small(1, 2));
        m.add_task(
            Box::new(Busy {
                slices: 10,
                cost: 1000,
            }),
            "a",
            None,
        );
        m.add_task(
            Box::new(Busy {
                slices: 10,
                cost: 1000,
            }),
            "b",
            None,
        );
        let r = m.run(None).unwrap();
        // Each needs ~10000/0.7 ≈ 14286 > 10000 (parallel but degraded),
        // well under 20000 (serial).
        assert!(r.virtual_ns > 13_000, "vns={}", r.virtual_ns);
        assert!(r.virtual_ns < 19_000, "vns={}", r.virtual_ns);
    }

    struct Sleeper {
        slept: bool,
        woke_at: Rc<RefCell<u64>>,
    }
    impl Task for Sleeper {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if !self.slept {
                self.slept = true;
                return Step::Sleep(42_000);
            }
            *self.woke_at.borrow_mut() = ctx.now();
            Step::Done
        }
    }

    #[test]
    fn sleep_blocks_without_burning_cpu() {
        let mut m = Machine::new(MachineConfig::small(1, 1));
        let woke_at = Rc::new(RefCell::new(0));
        m.add_task(
            Box::new(Sleeper {
                slept: false,
                woke_at: Rc::clone(&woke_at),
            }),
            "sleeper",
            None,
        );
        let r = m.run(None).unwrap();
        assert!(*woke_at.borrow() >= 42_000);
        assert!(r.tasks[0].cpu_time < 10_000);
    }

    struct SemWaiter {
        sem: SemId,
        waited: bool,
        done_at: Rc<RefCell<u64>>,
    }
    impl Task for SemWaiter {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if !self.waited {
                self.waited = true;
                return Step::SemWait(self.sem);
            }
            *self.done_at.borrow_mut() = ctx.now();
            Step::Done
        }
    }

    struct SemPoster {
        sem: SemId,
        delay_slices: u32,
    }
    impl Task for SemPoster {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if self.delay_slices > 0 {
                self.delay_slices -= 1;
                return Step::work(10_000, WorkTag::Sim);
            }
            ctx.sem_post(self.sem);
            Step::Done
        }
    }

    #[test]
    fn sem_wait_blocks_until_post() {
        let mut m = Machine::new(MachineConfig::small(2, 1));
        let sem = m.kernel().add_sem(0, 1);
        let done_at = Rc::new(RefCell::new(0));
        m.add_task(
            Box::new(SemWaiter {
                sem,
                waited: false,
                done_at: Rc::clone(&done_at),
            }),
            "waiter",
            None,
        );
        m.add_task(
            Box::new(SemPoster {
                sem,
                delay_slices: 3,
            }),
            "poster",
            None,
        );
        let r = m.run(None).unwrap();
        assert!(r.tasks.iter().all(|t| t.finished));
        // Waiter resumed only after poster's 30k of work.
        assert!(*done_at.borrow() >= 30_000, "done_at={}", done_at.borrow());
        // The waiter burned no CPU while blocked.
        assert!(r.tasks[0].cpu_time < 5_000);
    }

    #[test]
    fn sem_wait_with_count_proceeds_immediately() {
        let mut m = Machine::new(MachineConfig::small(1, 1));
        let sem = m.kernel().add_sem(1, 1);
        let done_at = Rc::new(RefCell::new(0));
        m.add_task(
            Box::new(SemWaiter {
                sem,
                waited: false,
                done_at: Rc::clone(&done_at),
            }),
            "waiter",
            None,
        );
        let r = m.run(None).unwrap();
        assert!(r.tasks[0].finished);
        assert!(*done_at.borrow() < 10_000);
    }

    struct BarrierTask {
        bar: BarrierId,
        work_before: u64,
        phase: u32,
        release_time: Rc<RefCell<u64>>,
    }
    impl Task for BarrierTask {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::work(self.work_before, WorkTag::Sim)
                }
                1 => {
                    self.phase = 2;
                    Step::BarrierWait(self.bar)
                }
                _ => {
                    *self.release_time.borrow_mut() = ctx.now();
                    Step::Done
                }
            }
        }
    }

    #[test]
    fn barrier_releases_all_when_last_arrives() {
        let mut m = Machine::new(MachineConfig::small(2, 1));
        let bar = m.kernel().add_barrier(2);
        let ta = Rc::new(RefCell::new(0));
        let tb = Rc::new(RefCell::new(0));
        m.add_task(
            Box::new(BarrierTask {
                bar,
                work_before: 1_000,
                phase: 0,
                release_time: Rc::clone(&ta),
            }),
            "fast",
            None,
        );
        m.add_task(
            Box::new(BarrierTask {
                bar,
                work_before: 50_000,
                phase: 0,
                release_time: Rc::clone(&tb),
            }),
            "slow",
            None,
        );
        let r = m.run(None).unwrap();
        assert!(r.tasks.iter().all(|t| t.finished));
        // Fast waits for slow: both release at ≥ 50k.
        assert!(*ta.borrow() >= 50_000);
        assert!((*ta.borrow() as i64 - *tb.borrow() as i64).abs() < 2_000);
        // Fast's CPU time excludes the blocked interval.
        assert!(r.tasks[0].cpu_time < 10_000);
    }

    #[test]
    fn pinned_tasks_contend_while_other_core_idles() {
        // Constant-affinity pathology: both pinned to core 0 of a 2-core
        // machine → serialized.
        let mut cfg = MachineConfig::small(2, 1);
        cfg.quantum = 2_000;
        let mut m = Machine::new(cfg);
        m.add_task(
            Box::new(Busy {
                slices: 10,
                cost: 1000,
            }),
            "a",
            Some(0),
        );
        m.add_task(
            Box::new(Busy {
                slices: 10,
                cost: 1000,
            }),
            "b",
            Some(0),
        );
        let r = m.run(None).unwrap();
        assert!(r.virtual_ns >= 20_000, "vns={}", r.virtual_ns);
        assert_eq!(r.cpus[1].busy_time, 0, "core 1 must stay idle");
    }

    #[test]
    fn newidle_steal_moves_waiting_task_to_freed_core() {
        // 3 unpinned tasks on 2 single-context cores: two land on core 0,
        // one on core 1. When core 1's task finishes (~12k), newidle
        // balancing steals the waiter from core 0 — total well under the
        // 34k a two-on-one-core finish would take.
        let mut cfg = MachineConfig::small(2, 1);
        cfg.quantum = 5_000;
        let mut m = Machine::new(cfg);
        for i in 0..3 {
            m.add_task(
                Box::new(Busy {
                    slices: 10,
                    cost: 1000,
                }),
                format!("t{i}"),
                None,
            );
        }
        let r = m.run(None).unwrap();
        assert!(r.virtual_ns < 30_000, "vns={}", r.virtual_ns);
        assert!(r.migrations >= 1, "expected a steal migration");
    }

    #[test]
    fn deadlock_detected() {
        let mut m = Machine::new(MachineConfig::small(1, 1));
        let sem = m.kernel().add_sem(0, 1);
        let done_at = Rc::new(RefCell::new(0));
        m.add_task(
            Box::new(SemWaiter {
                sem,
                waited: false,
                done_at,
            }),
            "stuck",
            None,
        );
        let err = m.run(None).unwrap_err();
        assert_eq!(err.blocked, vec!["stuck".to_string()]);
    }

    #[test]
    fn run_respects_time_limit() {
        let mut m = Machine::new(MachineConfig::small(1, 1));
        m.add_task(
            Box::new(Busy {
                slices: u32::MAX,
                cost: 1000,
            }),
            "forever",
            None,
        );
        let r = m.run(Some(100_000)).unwrap();
        assert!(r.virtual_ns <= 102_000);
        assert!(!r.tasks[0].finished);
    }

    #[test]
    fn determinism_same_config_same_report() {
        let build = || {
            let mut cfg = MachineConfig::small(2, 2);
            cfg.quantum = 3_000;
            let mut m = Machine::new(cfg);
            for i in 0..5 {
                m.add_task(
                    Box::new(Busy {
                        slices: 20,
                        cost: 700 + i * 37,
                    }),
                    format!("t{i}"),
                    None,
                );
            }
            m.run(None).unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a.virtual_ns, b.virtual_ns);
        assert_eq!(a.ctx_switches, b.ctx_switches);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.cpu_time, y.cpu_time);
        }
    }

    struct Mover {
        moved: bool,
        target: TaskId,
    }
    impl Task for Mover {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if !self.moved {
                self.moved = true;
                ctx.set_affinity(self.target, Some(1));
                return Step::work(1000, WorkTag::Sched);
            }
            Step::Done
        }
    }

    #[test]
    fn set_affinity_migrates_running_task() {
        let mut cfg = MachineConfig::small(2, 1);
        cfg.quantum = 1_000; // frequent slice boundaries
        let mut m = Machine::new(cfg);
        let busy = m.add_task(
            Box::new(Busy {
                slices: 30,
                cost: 1000,
            }),
            "busy",
            Some(0),
        );
        m.add_task(
            Box::new(Mover {
                moved: false,
                target: busy,
            }),
            "mover",
            Some(1),
        );
        let r = m.run(None).unwrap();
        assert!(r.tasks.iter().all(|t| t.finished));
        assert!(r.migrations >= 1, "busy must migrate to core 1");
        assert_eq!(m.kernel_ref().pin_of(busy), Some(1));
    }
}

#[cfg(test)]
mod mutex_tests {
    use super::*;
    use crate::task::MutexId;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Each locker: acquire, hold for `hold` work, record critical-section
    /// interval, unlock, done.
    struct Locker {
        mx: MutexId,
        hold: u64,
        phase: u32,
        acquired_at: u64,
        log: Rc<RefCell<Vec<(u64, u64)>>>,
    }
    impl Task for Locker {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::MutexLock(self.mx)
                }
                1 => {
                    self.phase = 2;
                    self.acquired_at = ctx.now();
                    Step::work(self.hold, WorkTag::Sched)
                }
                _ => {
                    self.log.borrow_mut().push((self.acquired_at, ctx.now()));
                    ctx.mutex_unlock(self.mx);
                    Step::Done
                }
            }
        }
    }

    #[test]
    fn mutex_serializes_critical_sections() {
        let mut m = Machine::new(MachineConfig::small(4, 1));
        let mx = m.kernel().add_mutex();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            m.add_task(
                Box::new(Locker {
                    mx,
                    hold: 10_000,
                    phase: 0,
                    acquired_at: 0,
                    log: Rc::clone(&log),
                }),
                format!("l{i}"),
                None,
            );
        }
        let r = m.run(None).unwrap();
        assert!(r.tasks.iter().all(|t| t.finished));
        // Critical sections must not overlap.
        let mut ivs = log.borrow().clone();
        ivs.sort();
        for w in ivs.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "critical sections overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(ivs.len(), 4);
    }

    #[test]
    #[should_panic(expected = "unlock of mutex not held")]
    fn foreign_unlock_panics() {
        struct Bad(MutexId);
        impl Task for Bad {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
                ctx.mutex_unlock(self.0);
                Step::Done
            }
        }
        let mut m = Machine::new(MachineConfig::small(1, 1));
        let mx = m.kernel().add_mutex();
        m.add_task(Box::new(Bad(mx)), "bad", None);
        let _ = m.run(None);
    }
}
