//! # ggpdes-machine — a deterministic many-core machine simulator
//!
//! The paper's experiments ran on a 64-core / 256-hardware-thread Intel
//! Knights Landing under Linux CFS. This crate substitutes that testbed with
//! a discrete-event model of the same machine:
//!
//! * physical cores with SMT contexts and a diminishing-throughput sharing
//!   model ([`MachineConfig::smt_total`]);
//! * a CFS-like scheduler: per-core runqueues, quantum preemption,
//!   wake-time placement, periodic idle balancing for unpinned tasks, and
//!   context-switch / migration costs;
//! * affinity control equivalent to `sched_setaffinity` (pin to one core);
//! * blocking semaphores, barriers (with adjustable arrival counts), and
//!   mutexes in virtual time;
//! * per-task CPU-time and work accounting broken down by [`WorkTag`].
//!
//! Tasks ([`Task`]) perform *real* computation in their `step` methods —
//! the PDES engine of `sim-rt` mutates genuine event queues in there — and
//! return the virtual cost of each slice. Only time is simulated, and every
//! run is bit-for-bit deterministic.

mod config;
mod kernel;
#[allow(clippy::module_inception)]
mod machine;
mod report;
mod task;

pub use config::{CostModel, MachineConfig};
pub use kernel::{Deadlock, Kernel, TState};
pub use machine::Machine;
pub use report::{CpuReport, Report, TaskReport};
pub use task::{BarrierId, Ctx, MutexId, SemId, Step, Task, TaskId, WorkTag};
