//! Execution reports produced by a machine run.

use crate::task::WorkTag;
use serde::{Deserialize, Serialize};

/// Per-task accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskReport {
    pub name: String,
    /// Scaled CPU time consumed (virtual ns, accounting for SMT sharing).
    pub cpu_time: u64,
    /// Raw work units per [`WorkTag`] (index with `WorkTag::index`).
    pub work: [u64; 5],
    /// Scaled CPU time per [`WorkTag`].
    pub time_by_tag: [u64; 5],
    /// Raw work units of kernel overhead (context switches, migrations).
    pub overhead_work: u64,
    /// Whether the task ran to completion.
    pub finished: bool,
}

impl TaskReport {
    /// Work attributed to one tag.
    pub fn work_for(&self, tag: WorkTag) -> u64 {
        self.work[tag.index()]
    }

    /// Scaled CPU time attributed to one tag.
    pub fn time_for(&self, tag: WorkTag) -> u64 {
        self.time_by_tag[tag.index()]
    }

    /// Total raw work units including overheads ("instructions executed").
    pub fn total_work(&self) -> u64 {
        self.work.iter().sum::<u64>() + self.overhead_work
    }
}

/// Per-core accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuReport {
    /// Context-seconds of busy time (sum over SMT contexts).
    pub busy_time: u64,
}

/// Full machine-run report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Virtual wall-clock at the end of the run (ns).
    pub virtual_ns: u64,
    pub ctx_switches: u64,
    pub migrations: u64,
    pub tasks: Vec<TaskReport>,
    pub cpus: Vec<CpuReport>,
}

impl Report {
    /// Virtual wall-clock in seconds.
    pub fn virtual_secs(&self) -> f64 {
        self.virtual_ns as f64 * 1e-9
    }

    /// Total raw work units across tasks (the "instructions executed"
    /// aggregate of the paper's §6.2/§6.3 comparisons).
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().map(TaskReport::total_work).sum()
    }

    /// Work for a given tag summed over all tasks.
    pub fn work_for(&self, tag: WorkTag) -> u64 {
        self.tasks.iter().map(|t| t.work_for(tag)).sum()
    }

    /// Aggregate core utilization in [0, 1]: busy context-time over
    /// `virtual_ns × total contexts`.
    pub fn utilization(&self, smt_ways: usize) -> f64 {
        if self.virtual_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.cpus.iter().map(|c| c.busy_time).sum();
        busy as f64 / (self.virtual_ns as f64 * (self.cpus.len() * smt_ways) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            virtual_ns: 2_000_000_000,
            ctx_switches: 3,
            migrations: 1,
            tasks: vec![TaskReport {
                name: "t0".into(),
                cpu_time: 10,
                work: [5, 4, 3, 2, 1],
                time_by_tag: [5, 4, 3, 2, 1],
                overhead_work: 7,
                finished: true,
            }],
            cpus: vec![
                CpuReport {
                    busy_time: 1_000_000_000
                };
                2
            ],
        }
    }

    #[test]
    fn totals() {
        let r = report();
        assert_eq!(r.virtual_secs(), 2.0);
        assert_eq!(r.total_work(), 5 + 4 + 3 + 2 + 1 + 7);
        assert_eq!(r.work_for(WorkTag::Gvt), 4);
        // 2e9 busy over 2e9 ns × 2 cpus × 1 way = 0.5
        assert!((r.utilization(1) - 0.5).abs() < 1e-12);
    }
}
