//! End-to-end invariants of the conservative runtime: the zero-lookahead
//! refusal, LBTS-cut checkpoints, protocol-tagged metrics, and equivalence
//! under the dynamic affinity policy.

use std::sync::Arc;
use std::time::Duration;

use cons_rt::{run_cons, ConsError, ConsRunConfig};
use models::{LocalityPattern, Phold, PholdConfig};
use pdes_core::{run_sequential, Checkpoint, EngineConfig, LpId, Model, SendCtx};
use sim_rt::{AffinityPolicy, GvtMode, Scheduler, SystemConfig};

fn engine(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(77)
        .with_gvt_interval(10)
        .with_zero_counter_threshold(100)
}

fn sys() -> SystemConfig {
    SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant)
}

/// A model that never overrides [`Model::lookahead`], i.e. promises nothing.
struct NoPromise;

impl Model for NoPromise {
    type State = u64;
    type Payload = ();

    fn num_lps(&self) -> usize {
        4
    }
    fn init_state(&self, _lp: LpId) -> u64 {
        0
    }
    fn init_events(&self, lp: LpId, _state: &mut u64, ctx: &mut SendCtx<'_, ()>) {
        ctx.send(lp, 1.0, ());
    }
    fn handle_event(&self, lp: LpId, state: &mut u64, _p: &(), ctx: &mut SendCtx<'_, ()>) {
        *state += 1;
        ctx.send(lp, 1.0, ());
    }
    fn state_digest(&self, state: &u64) -> u64 {
        *state
    }
}

#[test]
fn zero_lookahead_is_refused_with_a_structured_error() {
    let model = Arc::new(NoPromise);
    let rc = ConsRunConfig::new(2, engine(5.0), sys());
    match run_cons(&model, &rc) {
        Err(ConsError::ZeroLookahead { lookahead }) => {
            assert_eq!(lookahead, 0.0);
        }
        Ok(_) => panic!("zero lookahead must not run"),
        Err(e) => panic!("wrong error: {e}"),
    }
    // The refusal happens before any thread spawns, so it is instant — and
    // the message explains *why* (deadlock avoidance needs the margin).
    let msg = run_cons(&model, &rc).unwrap_err().to_string();
    assert!(msg.contains("lookahead"), "unhelpful message: {msg}");
    assert!(msg.contains("deadlock"), "unhelpful message: {msg}");
}

#[test]
fn metrics_carry_the_conservative_protocol_tag() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 4)));
    let rc = ConsRunConfig::new(threads, engine(8.0), sys());
    let r = run_cons(&model, &rc).expect("run completes");
    assert_eq!(r.metrics.protocol, "conservative");
    assert!(r.metrics.null_messages_sent > 0);
    assert!(r.metrics.lbts_rounds > 0);
    assert_eq!(r.metrics.lbts_rounds, r.metrics.gvt_rounds);
    // Conservative execution never speculates: nothing to roll back, no
    // anti-messages, processed == committed.
    assert_eq!(r.metrics.rolled_back, 0);
    assert_eq!(r.metrics.antis_sent, 0);
    assert_eq!(r.metrics.processed, r.metrics.committed);
}

#[test]
fn checkpoint_is_written_at_an_lbts_cut_and_reloads() {
    let threads = 4;
    let end = 12.0;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 4)));
    let dir = std::env::temp_dir().join(format!("cons-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("cut.bin");
    let rc = ConsRunConfig::new(threads, engine(end), sys())
        .with_checkpoint_every(3)
        .with_checkpoint_path(path.clone());
    let r = run_cons(&model, &rc).expect("run completes");
    assert!(r.metrics.committed > 0);

    let cut: Checkpoint<u64, ()> = Checkpoint::read(&path).expect("checkpoint reloads");
    assert!(cut.gvt.as_f64() > 0.0, "cut at time zero");
    // No upper bound on `cut.gvt`: once the event population drains at the
    // end of the run, the LBTS guarantee (min pending + lookahead) jumps
    // past `end_time`, and a final-round cut legitimately lands there.
    assert_eq!(cut.lps.len(), model.num_lps());
    // Every in-flight event of the cut is at-or-above its LBTS.
    for ev in &cut.events {
        assert!(ev.recv_time() >= cut.gvt, "event below the cut");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dynamic_affinity_preserves_the_oracle_trace() {
    let threads = 8;
    let ecfg = engine(6.0);
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        4,
        6.0,
        LocalityPattern::Strided,
    )));
    let oracle = run_sequential(&model, &ecfg, None);
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Dynamic);
    let rc = ConsRunConfig::new(threads, ecfg, sys).with_watchdog(Some(Duration::from_secs(60)));
    let r = run_cons(&model, &rc).expect("run completes");
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(r.digests, oracle.state_digests);
}

#[test]
fn telemetry_rounds_match_lbts_rounds() {
    let threads = 2;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 4)));
    let rc = ConsRunConfig::new(threads, engine(6.0), sys())
        .with_telemetry(telemetry::TelemetryConfig::on());
    let r = run_cons(&model, &rc).expect("run completes");
    let tel = r.telemetry.expect("telemetry was on");
    // One snapshot per completed LBTS round, so the round-stream exporters
    // built for the optimistic runtimes work unchanged.
    assert_eq!(tel.rounds.len() as u64, r.metrics.lbts_rounds);
}
