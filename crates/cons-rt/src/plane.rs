//! The null-message plane: a shared-memory realization of Chandy–Misra–Bryant
//! channel clocks.
//!
//! In message-passing CMB every pair of LPs keeps a FIFO channel, and a null
//! message on that channel carries the sender's promise "nothing from me below
//! this timestamp, ever again". On shared memory the channel *content* already
//! flows through the runtime's input queues; only the promise needs a home. It
//! lives here, as one monotone atomic per directed thread pair: a null message
//! degenerates to a `fetch_max` on the destination's clock cell, and "reading
//! my input channels" degenerates to a min-fold over one cache-padded row.
//!
//! ## The two-sided safety contract
//!
//! *Sender side*: a thread publishes `min(local pending, current bound) +
//! lookahead` to every outgoing channel **before** it processes the batch that
//! could produce new sends. Every event the batch emits is stamped at or above
//! `pending-min + lookahead`, and every future arrival it might later forward
//! is at or above `bound + lookahead`, so the promise can never be broken.
//! Guarantees are monotone by construction (see the proof sketch in DESIGN.md
//! §15), which makes `fetch_max` the right primitive rather than a repair.
//!
//! *Receiver side*: a thread reads its clock row (`Acquire`) and the published
//! GVT **before** draining its input queue, then processes strictly below
//! `max(row minimum, GVT + lookahead)`. Any event pushed before the clock
//! raise or GVT publication it observed is visible to that drain (the raise
//! is an `AcqRel` RMW, the GVT store a release, so both edges synchronize);
//! any event pushed after carries a timestamp at or above the bound. Either
//! way nothing below the bound can arrive later — processing is final and the
//! rollback machinery stays cold.

use crossbeam::utils::CachePadded;
use pdes_core::VirtualTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// Channel clocks of one conservative run. `clock[dst * n + src]` holds the
/// newest guarantee thread `src` has published toward thread `dst`, in
/// `VirtualTime` ticks (`u64::MAX` = channel fully open).
pub struct ConsPlane {
    n: usize,
    lookahead: VirtualTime,
    clocks: Vec<CachePadded<AtomicU64>>,
    null_msgs: AtomicU64,
    /// `null_msgs` as of the previous LBTS round close (round-delta telemetry).
    null_prev: AtomicU64,
}

impl ConsPlane {
    /// A plane for `n` threads with the model's declared `lookahead`.
    /// Clocks start at zero: before a thread's first publication it has
    /// promised nothing.
    pub fn new(n: usize, lookahead: VirtualTime) -> Self {
        ConsPlane {
            n,
            lookahead,
            clocks: (0..n * n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            null_msgs: AtomicU64::new(0),
            null_prev: AtomicU64::new(0),
        }
    }

    /// The model's declared lookahead.
    #[inline]
    pub fn lookahead(&self) -> VirtualTime {
        self.lookahead
    }

    /// The minimum over `me`'s input channel clocks — the channel half of
    /// `me`'s processing bound. [`VirtualTime::INFINITY`] for a one-thread
    /// run (no channels, no constraint).
    pub fn input_bound(&self, me: usize) -> VirtualTime {
        let mut min = u64::MAX;
        for src in 0..self.n {
            if src != me {
                min = min.min(self.clocks[me * self.n + src].load(Ordering::Acquire));
            }
        }
        VirtualTime::from_ticks(min)
    }

    /// Publish `guarantee` from `me` to every peer channel; each cell that
    /// actually rises counts as one null message sent. Call **before**
    /// processing the batch the guarantee was computed for.
    pub fn publish(&self, me: usize, guarantee: VirtualTime) {
        let g = guarantee.ticks();
        let mut raised = 0u64;
        for dst in 0..self.n {
            if dst != me {
                let old = self.clocks[dst * self.n + me].fetch_max(g, Ordering::AcqRel);
                if old < g {
                    raised += 1;
                }
            }
        }
        if raised > 0 {
            self.null_msgs.fetch_add(raised, Ordering::AcqRel);
        }
    }

    /// Total null messages (clock raises) published so far.
    pub fn null_messages(&self) -> u64 {
        self.null_msgs.load(Ordering::Acquire)
    }

    /// Null messages since the previous call — the round closer's telemetry
    /// delta. Only the closer calls this, so the read-then-store pair is
    /// race-free.
    pub fn null_round_delta(&self) -> u64 {
        let now = self.null_msgs.load(Ordering::Acquire);
        let prev = self.null_prev.swap(now, Ordering::AcqRel);
        now.saturating_sub(prev)
    }

    /// One channel clock, for tests and diagnostics.
    pub fn clock(&self, dst: usize, src: usize) -> VirtualTime {
        VirtualTime::from_ticks(self.clocks[dst * self.n + src].load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_is_monotone_and_counts_raises() {
        let p = ConsPlane::new(3, VirtualTime::from_f64(0.5));
        p.publish(0, VirtualTime::from_f64(2.0));
        assert_eq!(p.null_messages(), 2); // two peer channels rose
        p.publish(0, VirtualTime::from_f64(1.0)); // stale: no raise
        assert_eq!(p.null_messages(), 2);
        assert_eq!(p.clock(1, 0), VirtualTime::from_f64(2.0));
        assert_eq!(p.clock(2, 0), VirtualTime::from_f64(2.0));
        // Channel 2→1 untouched.
        assert_eq!(p.clock(1, 2), VirtualTime::from_ticks(0));
    }

    #[test]
    fn input_bound_folds_the_row_minimum() {
        let p = ConsPlane::new(3, VirtualTime::from_f64(0.5));
        p.publish(1, VirtualTime::from_f64(4.0));
        p.publish(2, VirtualTime::from_f64(3.0));
        assert_eq!(p.input_bound(0), VirtualTime::from_f64(3.0));
        // Single-thread plane: no channels, no constraint.
        let solo = ConsPlane::new(1, VirtualTime::from_f64(0.5));
        assert_eq!(solo.input_bound(0), VirtualTime::INFINITY);
    }

    #[test]
    fn round_delta_resets() {
        let p = ConsPlane::new(2, VirtualTime::from_f64(0.1));
        p.publish(0, VirtualTime::from_f64(1.0));
        assert_eq!(p.null_round_delta(), 1);
        assert_eq!(p.null_round_delta(), 0);
    }
}
