//! Spawn, run, and collect a conservative simulation.
//!
//! Mirrors `thread_rt::runner` deliberately: same spawn/poison/join
//! discipline, same liveness watchdog, same metrics shape — a conservative
//! run differs from an optimistic one by exactly one CLI flag, so it should
//! differ here by exactly the protocol fields (`protocol`,
//! `null_messages_sent`, `lbts_rounds`) and the up-front lookahead check.
//!
//! The watchdog earns special mention: the null-message protocol avoids
//! deadlock only under strictly positive lookahead, and [`run_cons`] refuses
//! zero-lookahead models with a structured [`ConsError::ZeroLookahead`]
//! before spawning anything. The watchdog stays armed anyway, as the backstop
//! behind the static check — a model that *declares* a positive lookahead but
//! breaks the contract at runtime surfaces as a stall dump (or a nonzero
//! rollback count), never as a silent hang.

use crate::plane::ConsPlane;
use crate::worker::{cons_worker_loop, ConsWorkerResult};
use metrics::RunMetrics;
use pdes_core::{
    EngineConfig, LpId, LpMap, Model, SimThreadId, StallDump, ThreadEngine, VirtualTime,
};
use sim_rt::SystemConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::{Telemetry, TelemetryConfig, TelemetryData};
use thread_rt::affinity::num_cores;
use thread_rt::ckpt::CkptSink;
use thread_rt::shared::RtShared;

/// Configuration for a conservative run.
#[derive(Debug, Clone)]
pub struct ConsRunConfig {
    pub num_threads: usize,
    pub engine: EngineConfig,
    pub system: SystemConfig,
    /// Cores used for the affinity policies (defaults to the host's count).
    pub pin_cores: usize,
    /// Wall-clock bound on LBTS progress before the liveness watchdog trips
    /// (`None` disables the watchdog entirely).
    pub watchdog: Option<Duration>,
    /// Take an LBTS-aligned checkpoint every this many rounds (0 disables).
    pub checkpoint_every_gvt: u64,
    /// Also persist each checkpoint here (atomic rename-into-place).
    pub checkpoint_path: Option<PathBuf>,
    /// Live telemetry (off by default; near-zero cost when disabled).
    pub telemetry: TelemetryConfig,
}

impl ConsRunConfig {
    pub fn new(num_threads: usize, engine: EngineConfig, system: SystemConfig) -> Self {
        ConsRunConfig {
            num_threads,
            engine,
            system,
            pin_cores: num_cores(),
            watchdog: Some(Duration::from_secs(30)),
            checkpoint_every_gvt: 0,
            checkpoint_path: None,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Override (or disable, with `None`) the liveness watchdog bound.
    pub fn with_watchdog(mut self, bound: Option<Duration>) -> Self {
        self.watchdog = bound;
        self
    }

    /// Take an LBTS-aligned checkpoint every `every` rounds (0 disables).
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every_gvt = every;
        self
    }

    /// Persist checkpoints to `path` (atomic rename-into-place).
    pub fn with_checkpoint_path(mut self, path: PathBuf) -> Self {
        self.checkpoint_path = Some(path);
        self
    }

    /// Enable live telemetry (per-thread tracing + LBTS-round snapshots).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Result of a conservative run.
#[derive(Debug, Clone)]
pub struct ConsResult {
    pub metrics: RunMetrics,
    /// Final state digest of every LP, ordered by LP id.
    pub digests: Vec<u64>,
    /// Collected trace + round snapshots (`None` when telemetry was off).
    pub telemetry: Option<TelemetryData>,
}

/// Why a conservative run failed to complete (or refused to start).
#[derive(Debug)]
pub enum ConsError {
    /// The model declared a non-positive lookahead. Null-message deadlock
    /// avoidance needs a strictly positive one, so the run is refused before
    /// any thread spawns rather than left to spin until the watchdog fires.
    ZeroLookahead { lookahead: f64 },
    /// The liveness watchdog saw no LBTS progress within its bound — the
    /// backstop behind the static lookahead check.
    Stalled(Box<StallDump>),
    /// A worker thread panicked; siblings were woken and drained.
    WorkerPanicked { thread: usize, message: String },
}

impl std::fmt::Display for ConsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsError::ZeroLookahead { lookahead } => write!(
                f,
                "conservative runtime requires strictly positive lookahead \
                 (model declared {lookahead}): without it null messages cannot \
                 break the send/receive cycle and the run would deadlock"
            ),
            ConsError::Stalled(dump) => write!(f, "{dump}"),
            ConsError::WorkerPanicked { thread, message } => {
                write!(f, "worker thread {thread} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ConsError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `model` conservatively on real threads. Blocks until the simulation
/// completes, a worker panics, or the watchdog trips — never hangs while the
/// watchdog is armed.
pub fn run_cons<M: Model>(model: &Arc<M>, rc: &ConsRunConfig) -> Result<ConsResult, ConsError> {
    let la = model.lookahead();
    // NaN must land in the refusal branch too, hence the explicit check
    // rather than a plain `la <= 0.0`.
    if la <= 0.0 || la.is_nan() {
        return Err(ConsError::ZeroLookahead { lookahead: la });
    }
    let lookahead = VirtualTime::from_f64(la);
    let n = rc.num_threads;
    assert!(
        model.num_lps().is_multiple_of(n),
        "weak scaling requires LPs divisible by thread count"
    );
    let map = LpMap::new(model.num_lps(), n, rc.engine.mapping);
    let mut shared_init: RtShared<M::Payload> = RtShared::new(n, rc.pin_cores, rc.engine.end_time);
    shared_init.set_checkpoint_every(rc.checkpoint_every_gvt);
    shared_init.set_telemetry(Telemetry::new(rc.telemetry.clone()));
    let shared = Arc::new(shared_init);
    let plane = Arc::new(ConsPlane::new(n, lookahead));
    let sink: Arc<CkptSink<M>> = Arc::new(CkptSink::new(
        if rc.checkpoint_every_gvt > 0 {
            rc.checkpoint_path.clone()
        } else {
            None
        },
        map.clone(),
    ));

    // Build engines and pre-route the initial events. The lookahead contract
    // covers init sends too (they are scheduled from virtual time zero), so
    // nothing lands below the first cycle's bound.
    let mut engines = Vec::with_capacity(n);
    for t in 0..n {
        let mut eng = ThreadEngine::new(
            Arc::clone(model),
            map.clone(),
            SimThreadId(t as u32),
            &rc.engine,
        );
        for (dst, msg) in eng.take_init_events() {
            shared.push_msg(t, dst.index(), msg);
        }
        engines.push(eng);
    }

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (t, eng) in engines.into_iter().enumerate() {
        let sh = Arc::clone(&shared);
        let pl = Arc::clone(&plane);
        let sys = rc.system;
        let ecfg = rc.engine.clone();
        let pin_cores = rc.pin_cores;
        let ck = Arc::clone(&sink);
        handles.push(
            std::thread::Builder::new()
                .name(format!("cons{t}"))
                .spawn(move || {
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cons_worker_loop(t, eng, Arc::clone(&sh), pl, sys, ecfg, pin_cores, ck)
                    }));
                    match caught {
                        Ok(r) => Ok(r),
                        Err(payload) => {
                            sh.poison_all();
                            Err(panic_message(payload.as_ref()))
                        }
                    }
                })
                .expect("spawn worker"),
        );
    }

    // Liveness watchdog, identical to the optimistic runner's: sample
    // (bound, rounds) and trip when neither moves within the bound.
    let monitor_exit = Arc::new(AtomicBool::new(false));
    let monitor = rc.watchdog.map(|bound| {
        let sh = Arc::clone(&shared);
        let exit = Arc::clone(&monitor_exit);
        let system = rc.system.name();
        let tick = (bound / 8).clamp(Duration::from_millis(5), Duration::from_millis(500));
        std::thread::Builder::new()
            .name("watchdog".into())
            .spawn(move || -> Option<Box<StallDump>> {
                let mut last = (0u64, 0u64);
                let mut last_change = Instant::now();
                loop {
                    std::thread::park_timeout(tick);
                    if exit.load(Ordering::Acquire) || sh.terminated.load(Ordering::Acquire) {
                        return None;
                    }
                    let now = (sh.gvt().ticks(), sh.gvt_rounds.load(Ordering::Acquire));
                    if now != last {
                        last = now;
                        last_change = Instant::now();
                        continue;
                    }
                    if last_change.elapsed() < bound {
                        continue;
                    }
                    let reason = format!(
                        "no LBTS progress for {:.1}s (bound {:.1}s) — \
                         null-message protocol wedged",
                        last_change.elapsed().as_secs_f64(),
                        bound.as_secs_f64()
                    );
                    let dump = Box::new(sh.build_stall_dump(&reason, &system));
                    sh.watchdog_tripped.store(true, Ordering::Release);
                    sh.poison_all();
                    return Some(dump);
                }
            })
            .expect("spawn watchdog")
    });

    let mut results: Vec<Option<ConsWorkerResult>> = (0..n).map(|_| None).collect();
    let mut first_panic: Option<(usize, String)> = None;
    for (t, h) in handles.into_iter().enumerate() {
        match h.join().expect("worker join") {
            Ok(r) => results[t] = Some(r),
            Err(message) => {
                if first_panic.is_none() {
                    first_panic = Some((t, message));
                }
            }
        }
    }
    monitor_exit.store(true, Ordering::Release);
    let stall = monitor.and_then(|m| {
        m.thread().unpark();
        m.join().expect("watchdog panicked")
    });
    let wall = start.elapsed();

    // Panic beats stall, exactly as in the optimistic runner.
    if let Some((thread, message)) = first_panic {
        return Err(ConsError::WorkerPanicked { thread, message });
    }
    if let Some(dump) = stall {
        return Err(ConsError::Stalled(dump));
    }

    let mut total = pdes_core::ThreadStats::default();
    let mut digests: Vec<(LpId, u64)> = Vec::new();
    for r in results.iter().flatten() {
        total.merge(&r.stats);
        digests.extend(r.digests.iter().copied());
    }
    digests.sort_by_key(|&(lp, _)| lp);

    let rounds = shared.gvt_rounds.load(Ordering::Acquire);
    let telemetry_data = shared.telemetry.enabled().then(|| shared.telemetry.take());
    let metrics = RunMetrics {
        system: rc.system.name(),
        threads: n,
        lps: model.num_lps(),
        wall_secs: wall.as_secs_f64(),
        committed: total.committed,
        processed: total.processed,
        rolled_back: total.rolled_back,
        rollbacks: total.rollbacks,
        antis_sent: total.antis_sent,
        gvt_rounds: rounds,
        gvt_cpu_secs: shared.gvt_wall_ns.load(Ordering::Acquire) as f64 * 1e-9,
        max_descheduled: shared.max_descheduled.load(Ordering::Acquire),
        commit_digest: total.commit_digest,
        pin_failures: shared.aff.lock().pin_failures,
        last_round: telemetry_data
            .as_ref()
            .and_then(|d| d.last_round().cloned()),
        protocol: "conservative".into(),
        null_messages_sent: plane.null_messages(),
        lbts_rounds: rounds,
        ..Default::default()
    };
    Ok(ConsResult {
        metrics,
        digests: digests.into_iter().map(|(_, d)| d).collect(),
        telemetry: telemetry_data,
    })
}
