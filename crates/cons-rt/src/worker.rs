//! The conservative per-thread worker: a Chandy–Misra–Bryant main loop on
//! the optimistic runtime's chassis.
//!
//! The loop shape is deliberately identical to `thread_rt::worker` — same
//! GVT/LBTS round phases, same tracer spans, same park/unpark machinery,
//! same checkpoint handshake — so every downstream consumer (trace_check,
//! round-stream exporters, stall dumps, checkpoint assembly) works on
//! conservative runs unchanged. Only the cycle differs: instead of
//! speculating and rolling back, it computes a processing bound from the
//! null-message plane and the published GVT, publishes its own outgoing
//! guarantee, and executes strictly below the bound. The rollback machinery
//! underneath stays cold (and doubles as a loud safety net: a model that
//! breaks its declared lookahead shows up as a nonzero rollback count, not
//! silent corruption).
//!
//! ## Why the bound is safe
//!
//! A cycle reads its clock row and the GVT *before* draining, then processes
//! strictly below `bound = max(row min, GVT + lookahead)`. Two independent
//! arguments cover the two halves (full sketch in DESIGN.md §15):
//!
//! * **Channels.** A clock raise is an `AcqRel` RMW; events the sender pushed
//!   before a raise we observed are visible to our subsequent drain, and
//!   events pushed after it are stamped at or above the raised value.
//! * **Rounds.** Every event a thread processes sits at or above its own
//!   phase-A fold, and the round's GVT is at or below every fold — so sends
//!   produced after a fold are at or above `GVT + lookahead`, while pushes
//!   from before the fold happen-before the GVT's publication (fold →
//!   `a_done` RMW → controller's acquire → GVT release-store → our acquire
//!   read) and are therefore visible to the post-read drain. Parked threads
//!   pin their pending floor into the reduction via `park_min`, which closes
//!   the same argument for threads that resume mid-round.

use crate::plane::ConsPlane;
use pdes_core::{EngineConfig, LpId, Model, Msg, Outbound, ThreadEngine, VirtualTime};
use sim_rt::{AffinityPolicy, SystemConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use telemetry::{EventKind, Tracer};
use thread_rt::affinity::{current_tid, note_pin_failure, pin_to_core, OsTid};
use thread_rt::batch::SendBatcher;
use thread_rt::ckpt::CkptSink;
use thread_rt::shared::RtShared;

/// Result of one conservative worker thread.
pub struct ConsWorkerResult {
    pub stats: pdes_core::ThreadStats,
    pub digests: Vec<(LpId, u64)>,
}

/// Wake parked threads the new bound lets advance. The conservative
/// counterpart of `RtShared::activate`: queued input wakes a thread exactly
/// as in the optimistic runtime, and additionally a parked pending floor
/// strictly below the thread's processing bound means its blocked channels
/// have opened — there is demand again.
fn activate_cons<P>(sh: &RtShared<P>, plane: &ConsPlane) -> usize {
    let mut n = 0;
    if sh.num_active.load(Ordering::Acquire) < sh.num_threads {
        let round_bound = sh.gvt().saturating_add(plane.lookahead());
        let mut m = sh.membership.lock();
        for i in 0..sh.num_threads {
            if sh.active[i].load(Ordering::Acquire) {
                continue;
            }
            let bound = plane.input_bound(i).max(round_bound);
            let floor = VirtualTime::from_ticks(sh.park_min_ticks(i));
            if sh.queue_len[i].load(Ordering::Acquire) > 0 || floor < bound {
                sh.active[i].store(true, Ordering::Release);
                m.subscribed[i] = true;
                sh.num_active.fetch_add(1, Ordering::AcqRel);
                sh.sems[i].post();
                n += 1;
            }
        }
    }
    n
}

/// Pseudo-controller duties of a conservative LBTS round: compute and
/// publish the bound (the same wait-free reduction the optimistic runtime
/// calls GVT), release armed checkpoint snapshotters, and either broadcast
/// termination or wake the parked threads the new bound unblocks.
fn aware_duties_cons<P>(sh: &RtShared<P>, plane: &ConsPlane, id: u64) {
    let _ = sh.compute_gvt();
    sh.ckpt_publish_if_armed(id);
    if sh.terminated.load(Ordering::Acquire) {
        sh.release_all_for_termination();
    } else {
        activate_cons(sh, plane);
    }
}

/// Run conservative simulation thread `me` to completion.
#[allow(clippy::too_many_arguments)]
pub fn cons_worker_loop<M: Model>(
    me: usize,
    mut engine: ThreadEngine<M>,
    sh: Arc<RtShared<M::Payload>>,
    plane: Arc<ConsPlane>,
    sys: SystemConfig,
    ecfg: EngineConfig,
    pin_cores: usize,
    ckpt: Arc<CkptSink<M>>,
) -> ConsWorkerResult {
    sh.os_tids[me].store(current_tid().0, Ordering::Release);
    let mut tracer = sh.telemetry.tracer(me);
    if sys.affinity == AffinityPolicy::Constant {
        let core = me % pin_cores.max(1);
        if pin_to_core(current_tid(), core) {
            tracer.instant(EventKind::Pin, sh.now_ns(), core as u64);
        } else {
            note_pin_failure(core);
            sh.aff.lock().pin_failures += 1;
        }
    }

    let la = plane.lookahead();
    let mut inbox: Vec<Msg<M::Payload>> = Vec::new();
    let mut outbox: Vec<Outbound<M::Payload>> = Vec::new();
    // Same batched send plane as the optimistic worker (`thread_rt::batch`):
    // the guarantee published at cycle start covers this cycle's sends, and
    // the end-of-cycle flush lands them before the next raise.
    let mut batcher: SendBatcher<M::Payload> = SendBatcher::new(sh.global_threads(), 64);
    let mut cycles_since_gvt: u64 = 0;
    let mut zero_counter: u64 = 0;
    let mut active_flag = true;
    let mut joined: Option<u64> = None;
    let mut idle_spins: u32 = 0;
    let mut backoff = pdes_core::GvtBackoff::default();

    // One conservative cycle; returns whether it did useful work. The order
    // inside is the whole protocol: read the bound sources, drain, publish
    // the outgoing guarantee, process, push. Publishing *before* processing
    // keeps the guarantee ahead of every send the batch can emit, mirroring
    // the window-min-before-push invariant of the optimistic send path.
    let cycle = |engine: &mut ThreadEngine<M>,
                 inbox: &mut Vec<Msg<M::Payload>>,
                 outbox: &mut Vec<Outbound<M::Payload>>,
                 batcher: &mut SendBatcher<M::Payload>,
                 zero_counter: &mut u64,
                 active_flag: &mut bool,
                 idle_spins: &mut u32,
                 tracer: &mut Tracer,
                 sh: &RtShared<M::Payload>| {
        let trace = tracer.enabled();
        let t0 = if trace { sh.now_ns() } else { 0 };
        // Bound sources are read before the drain: anything pushed before
        // the clock raise / GVT publication we observe here is visible to
        // the drain below, anything pushed after is at or above the bound.
        let bound = plane.input_bound(me).max(sh.gvt().saturating_add(la));
        inbox.clear();
        let n = sh.drain(me, inbox);
        outbox.clear();
        for m in inbox.drain(..) {
            engine.deliver(m, outbox);
        }
        // Outgoing promise: batch sends are at or above pending-min +
        // lookahead; later arrivals we might forward are at or above
        // bound + lookahead. Published before the batch runs.
        let guarantee = engine.local_min().min(bound).saturating_add(la);
        plane.publish(me, guarantee);
        let batch = engine.process_conservative(bound, ecfg.batch_size, outbox);
        for (dst, msg) in outbox.drain(..) {
            batcher.buffer(sh, me, dst.index(), msg);
        }
        batcher.flush(sh);
        if trace && batch.processed > 0 {
            tracer.span(
                EventKind::EventBatch,
                t0,
                sh.now_ns(),
                batch.processed as u64,
            );
        }
        let idle = n == 0 && batch.processed == 0;
        if idle {
            *zero_counter += 1;
            if *zero_counter > ecfg.zero_counter_threshold as u64 {
                *active_flag = false;
            }
            // A blocked conservative thread waits on a peer's clock raise
            // or an LBTS phase; on an oversubscribed host a hard spin here
            // starves that peer — escalate spin → yield → timed park.
            *idle_spins += 1;
            if *idle_spins >= 1024 {
                std::thread::park_timeout(std::time::Duration::from_micros(50));
            } else if (*idle_spins).is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        } else {
            *zero_counter = 0;
            *active_flag = true;
            *idle_spins = 0;
        }
        !idle
    };

    loop {
        sh.set_phase(me, 0); // cycle
        if sh.terminated.load(Ordering::Acquire) {
            break;
        }
        cycle(
            &mut engine,
            &mut inbox,
            &mut outbox,
            &mut batcher,
            &mut zero_counter,
            &mut active_flag,
            &mut idle_spins,
            &mut tracer,
            &sh,
        );
        cycles_since_gvt += 1;

        let round_waiting = sh
            .round_waiting_for(me)
            .is_some_and(|id| joined != Some(id));
        let base_interval = match ecfg.adaptive_gvt {
            Some(a) => a.effective_interval(ecfg.gvt_interval, engine.history_len()),
            None => ecfg.gvt_interval,
        };
        let interval = backoff.effective_interval(base_interval);
        if cycles_since_gvt < interval as u64 && !round_waiting {
            continue;
        }
        let (participate, id) = sh.try_join_round(me);
        if !participate || joined == Some(id) {
            continue;
        }
        joined = Some(id);
        sh.note_joined(me, id);
        cycles_since_gvt = 0;
        let enter = Instant::now();
        let trace = tracer.enabled();
        let mut ph = if trace { sh.now_ns() } else { 0 };

        // ---- the LBTS round (the optimistic GVT round, verbatim) ----
        // Phase A.
        sh.set_phase(me, 1); // gvt-a
        drain_deliver(me, &mut engine, &mut inbox, &mut outbox, &mut batcher, &sh);
        let local = engine.local_min();
        sh.fold_min(me, local);
        if trace {
            sh.tel_publish(me, local, engine.stats());
            let now = sh.now_ns();
            tracer.span(EventKind::GvtA, ph, now, id);
            ph = now;
        }
        sh.a_done.fetch_add(1, Ordering::AcqRel);
        let parts = sh.participants();
        sh.set_phase(me, 2); // gvt-send-a
        while sh.a_done.load(Ordering::Acquire) < parts && !sh.terminated.load(Ordering::Acquire) {
            cycle(
                &mut engine,
                &mut inbox,
                &mut outbox,
                &mut batcher,
                &mut zero_counter,
                &mut active_flag,
                &mut idle_spins,
                &mut tracer,
                &sh,
            );
        }
        // Phase B.
        sh.set_phase(me, 3); // gvt-b
        if trace {
            let now = sh.now_ns();
            tracer.span(EventKind::GvtSendA, ph, now, id);
            ph = now;
        }
        drain_deliver(me, &mut engine, &mut inbox, &mut outbox, &mut batcher, &sh);
        let local = engine.local_min();
        sh.fold_min(me, local);
        if trace {
            sh.tel_publish(me, local, engine.stats());
            let now = sh.now_ns();
            tracer.span(EventKind::GvtB, ph, now, id);
            ph = now;
        }
        sh.b_done.fetch_add(1, Ordering::AcqRel);
        sh.set_phase(me, 4); // gvt-send-b
        while sh.b_done.load(Ordering::Acquire) < parts && !sh.terminated.load(Ordering::Acquire) {
            cycle(
                &mut engine,
                &mut inbox,
                &mut outbox,
                &mut batcher,
                &mut zero_counter,
                &mut active_flag,
                &mut idle_spins,
                &mut tracer,
                &sh,
            );
        }
        // Phase Aware.
        sh.set_phase(me, 5); // gvt-aware
        if trace {
            let now = sh.now_ns();
            tracer.span(EventKind::GvtSendB, ph, now, id);
            ph = now;
        }
        if sh
            .aware_claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            aware_duties_cons(&sh, &plane, id);
        }
        if trace {
            let now = sh.now_ns();
            tracer.span(EventKind::GvtAware, ph, now, id);
            ph = now;
        }

        // Phase End: fossil-collect at the published bound (below an LBTS
        // nothing can arrive, so commitment is final here exactly as it is
        // below a GVT), and serve an armed checkpoint cut.
        sh.set_phase(me, 6); // gvt-end
        if sh.ckpt_armed_for(id) {
            while !sh.ckpt_ready() && !sh.terminated.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            if sh.ckpt_ready() {
                let cw0 = if trace { sh.now_ns() } else { 0 };
                inbox.clear();
                sh.drain_clean(me, &mut inbox);
                outbox.clear();
                for m in inbox.drain(..) {
                    engine.deliver(m, &mut outbox);
                }
                for (dst, msg) in outbox.drain(..) {
                    sh.push_msg(me, dst.index(), msg);
                }
                let g = sh.gvt();
                engine.fossil_collect(g);
                let (lps, events) = engine.snapshot_at_gvt(g);
                ckpt.deposit(
                    id,
                    g,
                    sh.gvt_rounds.load(Ordering::Acquire),
                    lps,
                    events,
                    sh.participants(),
                    &sh.faults,
                );
                if trace {
                    tracer.span(EventKind::CheckpointWrite, cw0, sh.now_ns(), id);
                }
            } else {
                engine.fossil_collect(sh.gvt());
            }
        } else {
            engine.fossil_collect(sh.gvt());
        }
        sh.gvt_wall_ns
            .fetch_add(enter.elapsed().as_nanos() as u64, Ordering::AcqRel);
        backoff.observe(sh.gvt().ticks(), ecfg.gvt_max_no_change);
        let terminated = sh.terminated.load(Ordering::Acquire);
        // Conservative parking condition: no queued input, send window
        // folded, and a sustained run of idle cycles — which here covers
        // both "nothing pending" and "pending but every channel blocked
        // below it". Unlike the optimistic worker, live pending does *not*
        // veto the park: the pending floor is published to the reduction
        // below, and the round closer's `activate_cons` wakes us the moment
        // a bound passes it.
        let wants_deact = sys.demand_driven()
            && !terminated
            && !active_flag
            && sh.queue_len[me].load(Ordering::Acquire) == 0
            && sh.window_is_clear(me);
        if trace {
            sh.tel_publish(me, engine.local_min(), engine.stats());
        }
        let closed = sh.end_phase();
        if closed {
            sh.tel_round_snapshot(id);
            if trace {
                let d = plane.null_round_delta();
                if d > 0 {
                    tracer.instant(EventKind::NullMsg, sh.now_ns(), d);
                }
            }
        }
        if closed && sys.affinity == AffinityPolicy::Dynamic && !terminated {
            let mut aff = sh.aff.lock();
            let tids: Vec<OsTid> = sh
                .os_tids
                .iter()
                .map(|t| OsTid(t.load(Ordering::Acquire)))
                .collect();
            let moved = aff.assign(|t| sh.active[t].load(Ordering::Acquire), &tids);
            if trace && moved > 0 {
                tracer.instant(EventKind::Migrate, sh.now_ns(), moved as u64);
            }
        }
        if trace {
            tracer.span(EventKind::GvtEnd, ph, sh.now_ns(), id);
        }
        if terminated {
            break;
        }
        if wants_deact {
            // Publish the pending floor *before* the membership transition:
            // any round opened after we unsubscribe acquires the membership
            // lock after us and therefore reads the floor — the reduction
            // can never overshoot events only we know about.
            sh.set_park_min(me, engine.local_min());
            if sh.deactivate_self(me, id) {
                sh.set_phase(me, 7); // parked
                let park0 = if trace { sh.now_ns() } else { 0 };
                if trace {
                    sh.tel_publish(me, VirtualTime::INFINITY, engine.stats());
                }
                sh.sems[me].wait();
                while !sh.active[me].load(Ordering::Acquire)
                    && !sh.terminated.load(Ordering::Acquire)
                {
                    sh.sems[me].wait();
                }
                sh.clear_park_min(me);
                zero_counter = 0;
                active_flag = true;
                cycles_since_gvt = 0;
                if trace {
                    let now = sh.now_ns();
                    tracer.span(EventKind::Park, park0, now, id);
                    tracer.instant(EventKind::Unpark, now, id);
                }
                if sh.terminated.load(Ordering::Acquire) {
                    break;
                }
            } else {
                // Refused (last active thread, or a newer round already
                // counts us): withdraw the floor, or the reduction would be
                // pinned below a thread that keeps running.
                sh.clear_park_min(me);
            }
        }
    }

    // Terminal sweep: the terminating LBTS proved every queued and pending
    // event sits at or beyond the end time, so one chaos-free drain plus an
    // unbounded conservative pass processes exactly the events *at* the end
    // time — the same set the sequential oracle executes — with no further
    // cross-thread dependence. Their sends land strictly beyond the end time
    // (lookahead is positive) and are dropped, as the oracle drops them.
    sh.set_phase(me, 8); // done
    inbox.clear();
    sh.drain_clean(me, &mut inbox);
    outbox.clear();
    for m in inbox.drain(..) {
        engine.deliver(m, &mut outbox);
    }
    loop {
        outbox.clear();
        let b = engine.process_conservative(VirtualTime::INFINITY, ecfg.batch_size, &mut outbox);
        if b.processed == 0 {
            break;
        }
    }
    engine.finalize();
    sh.telemetry.deposit(tracer);
    ConsWorkerResult {
        stats: engine.stats().clone(),
        digests: engine.state_digests(),
    }
}

/// Drain and deliver before folding an LBTS minimum.
fn drain_deliver<M: Model>(
    me: usize,
    engine: &mut ThreadEngine<M>,
    inbox: &mut Vec<Msg<M::Payload>>,
    outbox: &mut Vec<Outbound<M::Payload>>,
    batcher: &mut SendBatcher<M::Payload>,
    sh: &RtShared<M::Payload>,
) {
    inbox.clear();
    sh.drain(me, inbox);
    outbox.clear();
    for m in inbox.drain(..) {
        engine.deliver(m, outbox);
    }
    for (dst, msg) in outbox.drain(..) {
        batcher.buffer(sh, me, dst.index(), msg);
    }
    // The caller folds an LBTS minimum next, which resets the send window.
    batcher.flush(sh);
}
