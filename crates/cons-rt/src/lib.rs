//! # ggpdes-cons-rt — the conservative null-message runtime
//!
//! A fourth runtime implementing Chandy–Misra–Bryant synchronization on the
//! same chassis as the optimistic runtimes: `pdes_core::ThreadEngine` for
//! event execution (its conservative entry point processes strictly below a
//! bound and never rolls back), `thread_rt::RtShared` for queues, rounds,
//! parking, checkpoints and telemetry, and [`plane::ConsPlane`] — new here —
//! for the channel clocks that replace explicit null messages on shared
//! memory.
//!
//! The protocol in one paragraph: every model declares a strictly positive
//! **lookahead** (`Model::lookahead`) — a floor on the delay between
//! processing an event and any event it schedules. Each thread continuously
//! publishes `min(pending, bound) + lookahead` to its peers' channel clocks
//! (a `fetch_max`; each raise is the shared-memory form of a null message)
//! and processes strictly below `max(min input clock, LBTS + lookahead)`.
//! The periodic wait-free reduction the optimistic runtimes call a GVT round
//! doubles as an **LBTS round** here: same phases, same trace spans, same
//! checkpoint cuts, but the published value bounds the future instead of
//! ratifying the past. Positive lookahead guarantees every round strictly
//! advances the bound, so the protocol cannot deadlock; zero lookahead is
//! refused up front with [`runner::ConsError::ZeroLookahead`], and the
//! liveness watchdog backstops models that break their declared contract.
//!
//! See DESIGN.md §15 for the safety argument and the deviations from
//! textbook CMB.

pub mod plane;
pub mod runner;
pub mod worker;

pub use plane::ConsPlane;
pub use runner::{run_cons, ConsError, ConsResult, ConsRunConfig};
